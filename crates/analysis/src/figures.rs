//! Figure 3: WebSocket usage by Alexa site rank.
//!
//! The figure's y-axis is "Percentage of Sockets": for each 10K-rank bin,
//! the share of *all observed sockets* that are A&A (one line) and
//! non-A&A (the other) and fall on publishers in that bin. Summed over
//! bins the two lines give the overall A&A / non-A&A socket split — which
//! is why the paper can say "the fraction of A&A sockets is twice that of
//! non-A&A sockets across all ranks" while both lines peak near 1.8%:
//! usage concentrates at the top (with a drop between 10K and 20K), and
//! within the top 10K the A&A share is ~4.5× the non-A&A share.

use crate::study::Study;
use std::collections::BTreeMap;

/// One rank bin of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankBin {
    /// Lower rank bound (inclusive).
    pub rank_lo: u32,
    /// Upper rank bound (inclusive).
    pub rank_hi: u32,
    /// Publishers sampled in the bin.
    pub sites: usize,
    /// A&A sockets on publishers in this bin, as % of all sockets.
    pub pct_aa: f64,
    /// Non-A&A sockets in this bin, as % of all sockets.
    pub pct_non_aa: f64,
}

/// The computed figure.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// Bins in rank order.
    pub bins: Vec<RankBin>,
    /// Bin width used.
    pub bin_width: u32,
}

impl Figure3 {
    /// Computes the figure over a single crawl (the paper plots the pooled
    /// view; pass `None` to pool all four).
    pub fn compute(study: &Study, crawl: Option<usize>, bin_width: u32) -> Figure3 {
        let crawls: Vec<usize> = match crawl {
            Some(i) => vec![i],
            None => (0..study.crawl_count()).collect(),
        };
        // Site sample per bin (shown for context; the universe is identical
        // across crawls so the first chosen crawl's list is the sample).
        let mut site_ranks: BTreeMap<u32, usize> = BTreeMap::new();
        for site in &study.reductions[crawls[0]].sites {
            *site_ranks.entry(site.rank / bin_width).or_default() += 1;
        }
        // Socket counts per bin and type.
        let mut numer: BTreeMap<u32, (usize, usize)> = BTreeMap::new();
        let mut total = 0usize;
        for &idx in &crawls {
            for c in study.classified(idx) {
                total += 1;
                let e = numer.entry(c.obs.site_rank / bin_width).or_default();
                if c.is_aa_socket() {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        let total = total.max(1);
        let bins = site_ranks
            .into_iter()
            .map(|(bin, sites)| {
                let (aa, non_aa) = numer.get(&bin).copied().unwrap_or((0, 0));
                RankBin {
                    rank_lo: bin * bin_width + 1,
                    rank_hi: (bin + 1) * bin_width,
                    sites,
                    pct_aa: aa as f64 / total as f64 * 100.0,
                    pct_non_aa: non_aa as f64 / total as f64 * 100.0,
                }
            })
            .collect();
        Figure3 { bins, bin_width }
    }

    /// A&A : non-A&A socket-share ratio within the top 10K ranks — the
    /// paper's 4.5× claim.
    pub fn top10k_ratio(&self) -> Option<f64> {
        let (mut aa, mut non_aa) = (0.0, 0.0);
        for b in self.bins.iter().filter(|b| b.rank_hi <= 10_000) {
            aa += b.pct_aa;
            non_aa += b.pct_non_aa;
        }
        if non_aa == 0.0 {
            None
        } else {
            Some(aa / non_aa)
        }
    }

    /// Overall A&A : non-A&A socket ratio across all ranks (paper: ~2×).
    pub fn overall_ratio(&self) -> Option<f64> {
        let (mut aa, mut non_aa) = (0.0, 0.0);
        for b in &self.bins {
            aa += b.pct_aa;
            non_aa += b.pct_non_aa;
        }
        if non_aa == 0.0 {
            None
        } else {
            Some(aa / non_aa)
        }
    }

    /// CSV export: one row per bin, plot-ready.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("rank_lo,rank_hi,sites,pct_aa,pct_non_aa\n");
        for b in &self.bins {
            let _ = writeln!(
                out,
                "{},{},{},{:.4},{:.4}",
                b.rank_lo, b.rank_hi, b.sites, b.pct_aa, b.pct_non_aa
            );
        }
        out
    }

    /// Renders the series as aligned text plus a crude ASCII plot.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Figure 3: percentage of sockets by Alexa rank bin and type\n");
        let max = self
            .bins
            .iter()
            .map(|b| b.pct_aa.max(b.pct_non_aa))
            .fold(0.0f64, f64::max)
            .max(0.001);
        for b in &self.bins {
            let bar = |v: f64| {
                let width = (v / max * 40.0).round() as usize;
                "#".repeat(width)
            };
            let _ = writeln!(
                out,
                "{:>8}-{:<8} n={:<6} A&A {:>5.2}% |{:<40}|  non-A&A {:>5.2}% |{:<40}|",
                b.rank_lo,
                b.rank_hi,
                b.sites,
                b.pct_aa,
                bar(b.pct_aa),
                b.pct_non_aa,
                bar(b.pct_non_aa)
            );
        }
        if let Some(r) = self.top10k_ratio() {
            let _ = writeln!(out, "top-10K A&A : non-A&A ratio = {r:.2} (paper: ~4.5)");
        }
        if let Some(r) = self.overall_ratio() {
            let _ = writeln!(out, "overall A&A : non-A&A ratio = {r:.2} (paper: ~2)");
        }
        out
    }
}
