//! Crash-safe checkpointed crawls: persist each completed shard to a
//! durable journal, resume from whatever survived a kill.
//!
//! [`Study::run_checkpointed`] is the byte-compatible sibling of
//! [`Study::run`]: it crawls the same universe on the same stream-fused
//! sharded pipeline (each worker reduces straight off the browser's event
//! stream via a [`FusedShard`]), but after each shard's private
//! [`CrawlReduction`] is complete it is serialized and written to a
//! [`Journal`] segment
//! (atomic temp + fsync + rename, CRC-framed — see `sockscope-journal`).
//! On resume, the journal is scanned, checksums and the config
//! fingerprint are verified, everything torn/corrupt/mismatched is
//! quarantined into a recovery report, and **only the missing shards are
//! re-crawled**; recovered and fresh shard reductions merge under the
//! same `CrawlReduction` monoid as always.
//!
//! The invariant this module exists to uphold, and which
//! `tests/crash_recovery.rs` proves across a kill-point × shard × thread
//! matrix: **a resumed crawl's study snapshot is byte-identical to an
//! uninterrupted run's.** It holds because
//!
//! * per-site seeds depend only on `(config seed, site id, era)` — never
//!   on which shards were skipped;
//! * `CrawlReduction`'s JSON round-trip is lossless, so a recovered shard
//!   equals the shard a fresh crawl would have produced;
//! * `merge` + `normalize` make the fold independent of which side of the
//!   crash each shard came from.
//!
//! The config fingerprint covers everything that changes crawl *output*
//! (seed, scale, link budget, fault profile, segment format version) and
//! deliberately excludes the thread count, which changes only scheduling:
//! a crawl checkpointed on 8 threads may be resumed on 1.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::fused::FusedShard;
use crate::reduce::CrawlReduction;
use crate::study::{Study, StudyConfig, SHARDS_PER_THREAD};
use sockscope_faults::mix;
use sockscope_journal::{Journal, JournalScan, KillPoint, Quarantined, SegmentMeta};

/// Where and how a checkpointed run journals its shards.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Journal directory (created if absent).
    pub dir: PathBuf,
    /// Resume from whatever the journal holds. When `false`, the journal
    /// must be empty — a fresh run refuses to write into a directory that
    /// already holds another crawl's segments.
    pub resume: bool,
    /// Shard partition override for fresh runs (defaults to
    /// `threads × 4`). On resume the partition recorded in the journal
    /// always wins, so a crawl checkpointed under one partition is
    /// resumed under the same one.
    pub shards: Option<usize>,
    /// Deterministic crash injection for the test harness: die at the
    /// given kill point while persisting one specific shard. `None` in
    /// production.
    pub kill: Option<KillPlan>,
}

impl CheckpointOptions {
    /// Options for a fresh checkpointed run into `dir`.
    pub fn fresh(dir: impl Into<PathBuf>) -> CheckpointOptions {
        CheckpointOptions {
            dir: dir.into(),
            resume: false,
            shards: None,
            kill: None,
        }
    }

    /// Options resuming from the journal at `dir`.
    pub fn resume(dir: impl Into<PathBuf>) -> CheckpointOptions {
        CheckpointOptions {
            resume: true,
            ..CheckpointOptions::fresh(dir)
        }
    }
}

/// A seeded, deterministic process-death: while persisting shard
/// `(era, shard)`, the writer stops at `point` and the run aborts exactly
/// as if the process had been killed there — no later segment is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// Era index of the doomed persist.
    pub era: u32,
    /// Shard index of the doomed persist.
    pub shard: u32,
    /// Which phase boundary of the segment write the kill lands on.
    pub point: KillPoint,
    /// Seed for the torn-prefix offset (pure hash, PR 2 style).
    pub seed: u64,
}

/// Errors of the checkpointed driver.
#[derive(Debug)]
pub enum CheckpointError {
    /// Journal I/O failed.
    Io(std::io::Error),
    /// A fresh (non-resume) run was pointed at a non-empty journal.
    DirNotEmpty(PathBuf),
    /// The injected [`KillPlan`] fired — the simulated process is dead.
    /// Only the crash-injection harness ever sees this.
    Killed {
        /// Era the kill landed in.
        era: u32,
        /// Shard the kill landed on.
        shard: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "journal io: {e}"),
            CheckpointError::DirNotEmpty(dir) => write!(
                f,
                "checkpoint dir {} already holds a journal; pass --resume to continue it \
                 or point --checkpoint-dir at an empty directory",
                dir.display()
            ),
            CheckpointError::Killed { era, shard } => {
                write!(f, "injected kill fired at era {era}, shard {shard}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over raw bytes, for folding era labels into the fingerprint.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

/// Provenance of a checkpointed run: how much was recovered from the
/// journal, how much was re-crawled, and what was quarantined. Surfaces
/// in the report so a resumed measurement is auditable.
#[derive(Debug, Clone, Default)]
pub struct ResumeReport {
    /// Was this a resume (vs a fresh checkpointed run)?
    pub resumed: bool,
    /// Shards per era in the partition.
    pub shard_count: usize,
    /// Eras in the crawl's timeline.
    pub eras: usize,
    /// Era-shards recovered from durable segments (not re-crawled).
    pub shards_recovered: usize,
    /// Era-shards crawled in this process.
    pub shards_recrawled: usize,
    /// Everything the scan quarantined: torn temps, truncated or
    /// bit-flipped segments, fingerprint mismatches. Never merged.
    pub quarantined: Vec<Quarantined>,
}

impl ResumeReport {
    /// Renders the resume-provenance report section.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Resume provenance (crash-safe checkpointed crawl)\n");
        let _ = writeln!(
            out,
            "  mode:                 {}",
            if self.resumed { "resumed" } else { "fresh" }
        );
        let _ = writeln!(
            out,
            "  shard partition:      {} shards x {} eras",
            self.shard_count, self.eras
        );
        let _ = writeln!(out, "  shards recovered:     {}", self.shards_recovered);
        let _ = writeln!(out, "  shards re-crawled:    {}", self.shards_recrawled);
        let _ = writeln!(out, "  segments quarantined: {}", self.quarantined.len());
        for q in &self.quarantined {
            let _ = writeln!(out, "    {}: {}", q.file, q.reason);
        }
        out
    }
}

impl StudyConfig {
    /// Fingerprint of everything that shapes crawl *output*: universe
    /// seed, scale, link budget, the effective fault profile, and the
    /// journal segment format version. The thread count is deliberately
    /// excluded — it changes scheduling, never results — so a crawl may
    /// be resumed with a different degree of parallelism.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(0x5343_4B50_4A52_4E4C, self.seed); // "SCKPJRNL"
        h = mix(h, self.n_sites as u64);
        h = mix(h, self.max_links as u64);
        h = mix(h, u64::from(sockscope_journal::FORMAT_VERSION));
        // Zero-rate profiles behave exactly like no profile in the crawl,
        // so they must fingerprint identically.
        if let Some(f) = self.faults.as_ref().filter(|f| !f.is_zero()) {
            for v in [
                u64::from(f.connect_refused_pm),
                u64::from(f.handshake_reject_pm),
                u64::from(f.bad_accept_pm),
                u64::from(f.truncated_frame_pm),
                u64::from(f.malformed_frame_pm),
                u64::from(f.drop_pm),
                u64::from(f.stall_pm),
                u64::from(f.page_fail_pm),
                u64::from(f.max_retries),
                f.backoff_base,
                f.page_budget,
                f.stall_ticks,
                f.stall_timeout,
            ] {
                h = mix(h, v.wrapping_add(1));
            }
        }
        // The crawl schedule shapes output: era count, patch boundary,
        // activity jitter, and churn all change what the crawl observes.
        // The pinned paper preset hashes as the absence of a fold so that
        // four-crawl journals written before timelines existed (and any
        // journal of a default config) remain resumable.
        if !self.timeline.is_paper() {
            h = mix(h, 0x0E5A_711E);
            h = mix(h, self.timeline.len() as u64);
            for era in self.timeline.eras() {
                h = mix(h, era.index().wrapping_add(1));
                h = mix(h, if era.pre_patch() { 2 } else { 1 });
                h = mix(h, u64::from(era.activity_pm()));
                h = mix(h, fnv1a_bytes(era.label().as_bytes()));
                if let Some(churn) = era.churn() {
                    h = mix(h, churn.seed.wrapping_add(1));
                    h = mix(h, u64::from(churn.eras).wrapping_add(1));
                }
            }
        }
        // Site hazards shape output independently of the transport rates
        // (they decide the quarantine set), so they hash separately; a
        // hazard-free profile keeps its pre-supervision fingerprint.
        if let Some(f) = self.faults.as_ref().filter(|f| f.has_hazards()) {
            for v in [
                u64::from(f.site_panic_pm),
                u64::from(f.site_hang_pm),
                u64::from(f.site_alloc_pm),
                f.site_deadline,
                f.site_alloc_budget,
                u64::from(f.site_retries),
            ] {
                h = mix(h, v.wrapping_add(1));
            }
        }
        h
    }
}

impl Study {
    /// Runs the study with durable per-shard checkpoints (and, with
    /// [`CheckpointOptions::resume`], from whatever a previous attempt
    /// left in the journal). The resulting study — and its snapshot —
    /// is byte-identical to [`Study::run`] with the same config.
    pub fn run_checkpointed(
        config: &StudyConfig,
        opts: &CheckpointOptions,
    ) -> Result<(Study, ResumeReport), CheckpointError> {
        let journal = Journal::open(&opts.dir)?;
        let fingerprint = config.fingerprint();

        let scan = if opts.resume {
            journal.scan_bounded(fingerprint, Some(config.timeline.len() as u32))?
        } else {
            if !journal.is_empty()? {
                return Err(CheckpointError::DirNotEmpty(opts.dir.clone()));
            }
            JournalScan::default()
        };

        // The journal's recorded partition wins; fresh runs pick one.
        let shard_count = scan
            .shard_count
            .map(|c| c as usize)
            .or(opts.shards)
            .unwrap_or(config.threads.max(1) * SHARDS_PER_THREAD)
            .max(1);

        let eras = config.timeline.len();
        let mut quarantined = scan.quarantined;
        let mut recovered: Vec<Vec<Option<CrawlReduction>>> =
            (0..eras).map(|_| vec![None; shard_count]).collect();
        for seg in scan.segments {
            let era = seg.meta.era as usize;
            let shard = seg.meta.shard_index as usize;
            if era >= eras || shard >= shard_count {
                quarantined.push(journal.quarantine(
                    &seg.file,
                    &format!("shard coordinates out of range (era {era}, shard {shard})"),
                )?);
                continue;
            }
            let text = String::from_utf8_lossy(&seg.payload);
            match serde_json::from_str::<CrawlReduction>(&text) {
                Ok(reduction) => recovered[era][shard] = Some(reduction),
                // A CRC-valid segment whose payload fails to decode means
                // it was written by an incompatible build; quarantine and
                // re-crawl rather than guess.
                Err(e) => {
                    quarantined
                        .push(journal.quarantine(&seg.file, &format!("payload undecodable: {e}"))?);
                }
            }
        }

        let web = Study::universe(config);
        let base_engine = Study::engine_for(&web);
        // Evolving timelines label/block against each era's lists (see
        // `Study::run_pipeline`); the frozen paper preset shares one
        // engine and stays byte-identical to the pre-timeline driver.
        let evolving = config.timeline.evolves();
        let crawl_config = Study::crawl_config(config);

        // Simulated process death (test harness): once the kill fires, no
        // further byte reaches the journal and the run aborts.
        let dead = AtomicBool::new(false);
        let persist_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

        let mut reductions = Vec::new();
        let mut shards_recovered = 0usize;
        let mut shards_recrawled = 0usize;

        for era in config.timeline.eras() {
            let era_idx = era.index() as usize;
            let era_web = web.for_era(era.clone());
            let era_engine = evolving.then(|| Study::engine_for(&era_web));
            let engine = era_engine.as_ref().unwrap_or(&base_engine);
            let make_extensions =
                || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(era));
            let era_recovered = &recovered[era_idx];
            // Writes one shard's finished reduction to the journal — or, on
            // the doomed shard of an injected kill plan, simulates the
            // process dying mid-write. Runs on the owning worker under the
            // static driver and on the reduce stage under the orchestrator;
            // either way it is off the per-site hot path.
            let persist_reduction = |s: usize, reduction: &CrawlReduction| {
                if dead.load(Ordering::Relaxed) {
                    return;
                }
                let meta = SegmentMeta {
                    fingerprint,
                    era: era_idx as u32,
                    shard_index: s as u32,
                    shard_count: shard_count as u32,
                };
                let payload = serde_json::to_string(reduction).expect("reduction serializes");
                let outcome = match &opts.kill {
                    Some(k) if k.era == era_idx as u32 && k.shard == s as u32 => {
                        dead.store(true, Ordering::Relaxed);
                        journal.write_segment_killed(&meta, payload.as_bytes(), k.point, k.seed)
                    }
                    _ => journal.write_segment(&meta, payload.as_bytes()),
                };
                if let Err(e) = outcome {
                    let mut slot = persist_error.lock().expect("persist error lock");
                    slot.get_or_insert(e);
                }
            };

            // Both drivers share the journal format, the fingerprint, and
            // the `i % shard_count` partition, so a journal written by one
            // resumes under the other.
            let fresh: Vec<Option<CrawlReduction>> = if config.orchestrated {
                let orch = Study::orchestrator_config(config);
                sockscope_crawler::crawl_orchestrated_resumable(
                    &era_web,
                    &crawl_config,
                    &orch,
                    shard_count,
                    &make_extensions,
                    &|| FusedShard::new(era.label(), era.pre_patch(), engine),
                    &|worker: &mut FusedShard<'_>| worker.take_site_reduction(),
                    &|_shard| CrawlReduction::new(era.label(), era.pre_patch()),
                    &|acc: &mut CrawlReduction, site| acc.absorb(site),
                    &|s| era_recovered[s].is_some(),
                    &|s, acc: &CrawlReduction| persist_reduction(s, acc),
                    &|| dead.load(Ordering::Relaxed),
                )
            } else {
                sockscope_crawler::crawl_sharded_sink_resumable(
                    &era_web,
                    &crawl_config,
                    shard_count,
                    &make_extensions,
                    &|_shard| FusedShard::new(era.label(), era.pre_patch(), engine),
                    &|s| era_recovered[s].is_some() || dead.load(Ordering::Relaxed),
                    &|s, acc: &FusedShard<'_>| persist_reduction(s, acc.reduction()),
                )
                .into_iter()
                .map(|slot| slot.map(FusedShard::into_reduction))
                .collect()
            };

            if let Some(e) = persist_error.lock().expect("persist error lock").take() {
                return Err(CheckpointError::Io(e));
            }
            if dead.load(Ordering::Relaxed) {
                let k = opts.kill.as_ref().expect("dead implies a kill plan");
                return Err(CheckpointError::Killed {
                    era: k.era,
                    shard: k.shard,
                });
            }

            let mut reduction = CrawlReduction::new(era.label(), era.pre_patch());
            for (s, slot) in fresh.into_iter().enumerate() {
                let shard_reduction = match slot {
                    Some(shard) => {
                        shards_recrawled += 1;
                        shard
                    }
                    None => {
                        shards_recovered += 1;
                        recovered[era_idx][s]
                            .take()
                            .expect("skipped shards were recovered")
                    }
                };
                reduction = reduction.merge(shard_reduction);
            }
            reduction.normalize();
            reductions.push(reduction);
        }

        let study = Study::assemble(&web, base_engine, reductions);
        let report = ResumeReport {
            resumed: opts.resume,
            shard_count,
            eras,
            shards_recovered,
            shards_recrawled,
            quarantined,
        };
        Ok((study, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::StudySnapshot;
    use sockscope_webgen::CrawlEra;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sockscope-checkpoint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> StudyConfig {
        StudyConfig {
            seed: 0xBEEF,
            n_sites: 40,
            threads: 2,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn fresh_checkpointed_run_matches_the_in_memory_pipeline() {
        let dir = tmpdir("fresh");
        let (study, report) =
            Study::run_checkpointed(&config(), &CheckpointOptions::fresh(&dir)).unwrap();
        let baseline = Study::run(&config());
        assert_eq!(
            StudySnapshot::capture(&study).to_json(),
            StudySnapshot::capture(&baseline).to_json()
        );
        assert!(!report.resumed);
        assert_eq!(report.shards_recovered, 0);
        assert_eq!(
            report.shards_recrawled,
            report.shard_count * CrawlEra::ALL.len()
        );
        assert!(report.quarantined.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_over_a_complete_journal_recovers_every_shard() {
        let dir = tmpdir("complete");
        let cfg = config();
        let (first, _) = Study::run_checkpointed(&cfg, &CheckpointOptions::fresh(&dir)).unwrap();
        let (second, report) =
            Study::run_checkpointed(&cfg, &CheckpointOptions::resume(&dir)).unwrap();
        assert_eq!(
            StudySnapshot::capture(&first).to_json(),
            StudySnapshot::capture(&second).to_json()
        );
        assert_eq!(report.shards_recrawled, 0);
        assert_eq!(
            report.shards_recovered,
            report.shard_count * CrawlEra::ALL.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_run_refuses_a_dirty_journal() {
        let dir = tmpdir("dirty");
        let cfg = config();
        Study::run_checkpointed(&cfg, &CheckpointOptions::fresh(&dir)).unwrap();
        match Study::run_checkpointed(&cfg, &CheckpointOptions::fresh(&dir)) {
            Err(CheckpointError::DirNotEmpty(_)) => {}
            Err(other) => panic!("expected DirNotEmpty, got {other:?}"),
            Ok(_) => panic!("expected DirNotEmpty, got a successful run"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_separates_configs_but_not_thread_counts() {
        let base = config();
        assert_eq!(base.fingerprint(), config().fingerprint());
        let more_threads = StudyConfig {
            threads: 16,
            ..config()
        };
        assert_eq!(base.fingerprint(), more_threads.fingerprint());
        // Orchestrator scheduling knobs change execution order, never
        // output, so a journal resumes across driver and knob changes.
        let other_driver = StudyConfig {
            orchestrated: false,
            ..config()
        };
        assert_eq!(base.fingerprint(), other_driver.fingerprint());
        let other_knobs = StudyConfig {
            workers: Some(12),
            queue_depth: 1,
            ..config()
        };
        assert_eq!(base.fingerprint(), other_knobs.fingerprint());
        let other_seed = StudyConfig {
            seed: 0xF00D,
            ..config()
        };
        assert_ne!(base.fingerprint(), other_seed.fingerprint());
        let other_scale = StudyConfig {
            n_sites: 41,
            ..config()
        };
        assert_ne!(base.fingerprint(), other_scale.fingerprint());
        let faulted = StudyConfig {
            faults: Some(sockscope_faults::FaultProfile::mild()),
            ..config()
        };
        assert_ne!(base.fingerprint(), faulted.fingerprint());
        // A zero-rate profile crawls identically to no profile, so it
        // must resume a fault-free journal.
        let zeroed = StudyConfig {
            faults: Some(sockscope_faults::FaultProfile::none()),
            ..config()
        };
        assert_eq!(base.fingerprint(), zeroed.fingerprint());
    }
}
