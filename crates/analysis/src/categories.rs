//! Per-category breakdown of WebSocket usage.
//!
//! §3.3 samples the top of all 17 Alexa categories; the paper aggregates
//! across them, but the sample design makes a category cut natural: chat
//! widgets cluster on business/shopping/health sites, tickers on sports and
//! games, WebSpectator on news. This module reproduces that cut — a
//! deeper-dive extension of the paper's evaluation (the kind of analysis
//! §6 calls for when it asks for continued measurement).

use crate::study::Study;
use std::collections::BTreeMap;

/// Aggregates for one category.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CategoryRow {
    /// Category slug (from the site-domain prefix).
    pub category: String,
    /// Sites sampled (per crawl; identical across crawls).
    pub sites: usize,
    /// Sites with ≥1 socket in any crawl.
    pub sites_with_sockets: usize,
    /// Total sockets across crawls.
    pub sockets: usize,
    /// …of which A&A.
    pub aa_sockets: usize,
}

impl CategoryRow {
    /// % of the category's sites using WebSockets.
    pub fn pct_sites_with_sockets(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            self.sites_with_sockets as f64 / self.sites as f64 * 100.0
        }
    }

    /// A&A share of the category's sockets.
    pub fn pct_aa(&self) -> f64 {
        if self.sockets == 0 {
            0.0
        } else {
            self.aa_sockets as f64 / self.sockets as f64 * 100.0
        }
    }
}

/// The category table.
#[derive(Debug, Clone)]
pub struct CategoryBreakdown {
    /// Rows sorted by socket count, descending.
    pub rows: Vec<CategoryRow>,
}

/// Extracts the category slug from a synthetic site domain
/// (`business-site-000123.example` → `business`).
pub fn category_of(domain: &str) -> Option<&str> {
    let idx = domain.find("-site-")?;
    Some(&domain[..idx])
}

impl CategoryBreakdown {
    /// Computes the breakdown over all crawls of a study.
    pub fn compute(study: &Study) -> CategoryBreakdown {
        let mut map: BTreeMap<String, CategoryRow> = BTreeMap::new();
        // Denominators from the synthetic domain prefixes of socket sites
        // are not enough — we need all sites. SiteFlags carries no domain,
        // so count sites once per category via the sockets' site domains
        // for numerators and leave `sites` to the per-category sample size
        // estimated from the first crawl's flags (uniform categories).
        let total_sites = study.reductions.first().map(|r| r.sites.len()).unwrap_or(0);
        // ~uniform assignment over 17 categories in the generator.
        let per_category = total_sites / 17;

        let mut seen_sites: BTreeMap<String, std::collections::BTreeSet<String>> = BTreeMap::new();
        for idx in 0..study.crawl_count() {
            for c in study.classified(idx) {
                let Some(cat) = category_of(&c.obs.site_domain) else {
                    continue;
                };
                let row = map.entry(cat.to_string()).or_insert_with(|| CategoryRow {
                    category: cat.to_string(),
                    sites: per_category,
                    ..CategoryRow::default()
                });
                row.sockets += 1;
                if c.is_aa_socket() {
                    row.aa_sockets += 1;
                }
                seen_sites
                    .entry(cat.to_string())
                    .or_default()
                    .insert(c.obs.site_domain.clone());
            }
        }
        for (cat, sites) in seen_sites {
            if let Some(row) = map.get_mut(&cat) {
                row.sites_with_sockets = sites.len();
            }
        }
        let mut rows: Vec<CategoryRow> = map.into_values().collect();
        rows.sort_by(|a, b| b.sockets.cmp(&a.sockets).then(a.category.cmp(&b.category)));
        CategoryBreakdown { rows }
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("Category breakdown (sockets across all four crawls)\n");
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>14} {:>10} {:>8}",
            "category", "sockets", "%sites w/WS", "A&A", "%A&A"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<14} {:>8} {:>13.1}% {:>10} {:>7.0}%",
                r.category,
                r.sockets,
                r.pct_sites_with_sockets(),
                r.aa_sockets,
                r.pct_aa()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_extraction() {
        assert_eq!(
            category_of("business-site-000123.example"),
            Some("business")
        );
        assert_eq!(category_of("kids-site-000001.example"), Some("kids"));
        assert_eq!(category_of("unrelated.example"), None);
    }
}
