//! Streaming reduction of crawl records into compact observations.
//!
//! A paper-scale crawl (100K sites × ≤16 pages) is far too large to keep as
//! inclusion trees. [`CrawlReduction`] consumes each site's trees as they
//! are produced ([`sockscope_crawler::crawl_streaming`]) and keeps only:
//!
//! * labeling counts per second-level domain (`a(d)`, `n(d)` from §3.2),
//! * one [`SocketObservation`] per WebSocket (attribution + classified
//!   payload items + blocking-analysis flags),
//! * aggregate HTTP counters per domain (for Table 5's HTTP/S columns and
//!   the §4.2 chain statistics),
//! * per-site rank/socket flags (for Table 1 and Figure 3).
//!
//! Reductions form a commutative monoid under [`CrawlReduction::merge`]
//! (up to [`CrawlReduction::normalize`], which canonicalizes the order of
//! the two positional vectors): the sharded crawl driver gives each worker
//! a private reduction and folds the shards together afterwards, so no
//! lock is needed while classifying.

use crate::pii::{PiiLibrary, ReceivedClass};
use serde::{Deserialize, Serialize};
use sockscope_crawler::SiteRecord;
use sockscope_filterlist::{Engine, RequestContext, ResourceType};
use sockscope_inclusion::{InclusionTree, NodeKind};
use sockscope_urlkit::Url;
use sockscope_webmodel::SentItem;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One classified WebSocket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketObservation {
    /// Endpoint URL.
    pub url: String,
    /// Endpoint hostname.
    pub host: String,
    /// Hostname of the nearest ancestor script (the page host if the
    /// socket was opened by inline first-party code).
    pub initiator_host: String,
    /// Hostnames of every ancestor resource, root → parent.
    pub chain_hosts: Vec<String>,
    /// Socket contacted a third-party SLD.
    pub cross_origin: bool,
    /// Items recovered from the handshake + sent frames by the regex
    /// library.
    pub sent_items: BTreeSet<SentItem>,
    /// Content classes recovered from received frames.
    pub received_classes: BTreeSet<ReceivedClass>,
    /// No payload frames sent (Table 5's "No data" row; the handshake
    /// still carried the UA).
    pub no_data_sent: bool,
    /// No payload frames received.
    pub no_data_received: bool,
    /// Would EasyList+EasyPrivacy have cut this chain post-hoc? (§4.2)
    pub chain_blocked: bool,
    /// Rank of the publisher the socket appeared on.
    pub site_rank: u32,
    /// Publisher domain.
    pub site_domain: String,
}

/// Aggregate HTTP counters for one second-level domain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpAgg {
    /// Total requests.
    pub total: u64,
    /// Sent-item counts (indexed by [`SentItem::ALL`] position).
    pub sent_counts: [u64; 15],
    /// Received-class counts (indexed by [`ReceivedClass::ALL`] position).
    pub recv_counts: [u64; 5],
    /// Requests whose chain a blocker would have cut.
    pub chains_blocked: u64,
}

impl HttpAgg {
    /// Adds another aggregate's counters into this one.
    pub fn absorb(&mut self, other: &HttpAgg) {
        self.total += other.total;
        for (mine, theirs) in self.sent_counts.iter_mut().zip(&other.sent_counts) {
            *mine += theirs;
        }
        for (mine, theirs) in self.recv_counts.iter_mut().zip(&other.recv_counts) {
            *mine += theirs;
        }
        self.chains_blocked += other.chains_blocked;
    }
}

/// Per-site flags for Table 1 / Figure 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteFlags {
    /// Alexa-like rank.
    pub rank: u32,
    /// Pages visited.
    pub pages: usize,
    /// Sockets observed on the site.
    pub sockets: usize,
}

/// The streaming reducer for one crawl.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlReduction {
    /// Crawl label (Table 1 row).
    pub label: String,
    /// Was this crawl pre-patch?
    pub pre_patch: bool,
    /// Labeling counts: fully-qualified host → (tagged-A&A, untagged)
    /// observation counts; the labeler aggregates these to 2nd-level
    /// domains (with CDN overrides) when building `D'`.
    pub label_counts: HashMap<String, (u64, u64)>,
    /// All classified sockets.
    pub sockets: Vec<SocketObservation>,
    /// HTTP aggregates per domain.
    pub http: BTreeMap<String, HttpAgg>,
    /// Per-site flags.
    pub sites: Vec<SiteFlags>,
}

impl CrawlReduction {
    /// Creates an empty reduction.
    pub fn new(label: impl Into<String>, pre_patch: bool) -> CrawlReduction {
        CrawlReduction {
            label: label.into(),
            pre_patch,
            label_counts: HashMap::new(),
            sockets: Vec::new(),
            http: BTreeMap::new(),
            sites: Vec::new(),
        }
    }

    /// Reduces one site record. `engine` is the combined
    /// EasyList+EasyPrivacy engine (used both for labeling tags and for the
    /// post-hoc blocking analysis); `lib` is the PII library.
    pub fn observe_site(&mut self, record: &SiteRecord, engine: &Engine, lib: &PiiLibrary) {
        let mut site_sockets = 0usize;
        for tree in &record.trees {
            site_sockets += self.observe_tree(tree, record, engine, lib);
        }
        self.sites.push(SiteFlags {
            rank: record.rank,
            pages: record.trees.len(),
            sockets: site_sockets,
        });
    }

    fn observe_tree(
        &mut self,
        tree: &InclusionTree,
        record: &SiteRecord,
        engine: &Engine,
        lib: &PiiLibrary,
    ) -> usize {
        let page = Url::parse(&tree.page_url).ok();
        let mut sockets = 0usize;

        // Precompute per-node "would the lists block this node itself".
        let n = tree.nodes().len();
        let mut node_blocked = vec![false; n];
        for (i, node) in tree.nodes().iter().enumerate() {
            let rtype = match node.kind {
                NodeKind::Script => ResourceType::Script,
                NodeKind::Image => ResourceType::Image,
                NodeKind::Xhr => ResourceType::Xhr,
                _ => continue,
            };
            let (Some(page), Ok(url)) = (page.as_ref(), Url::parse(&node.url)) else {
                continue;
            };
            node_blocked[i] = engine.blocks(&RequestContext {
                url: &url,
                page,
                resource_type: rtype,
            });
        }
        // Chain blocking: a node's chain is blocked if itself or any
        // ancestor is.
        let mut chain_blocked = vec![false; n];
        for (i, node) in tree.nodes().iter().enumerate() {
            let parent_blocked = node.parent.map(|p| chain_blocked[p.0]).unwrap_or(false);
            chain_blocked[i] = parent_blocked || node_blocked[i];
        }

        for (i, node) in tree.nodes().iter().enumerate() {
            match node.kind {
                NodeKind::Script | NodeKind::Image | NodeKind::Xhr => {
                    // Labeling observation (§3.2): tag by the rule lists.
                    let host = node.host.to_ascii_lowercase();
                    if host.is_empty() {
                        continue;
                    }
                    // Keyed by FULL hostname: the study's Cloudfront
                    // overrides (§3.2) act on fully-qualified CDN hosts, so
                    // aggregation to 2nd-level domains must happen in the
                    // labeler, where the override table lives.
                    let entry = self.label_counts.entry(host.clone()).or_insert((0, 0));
                    if node_blocked[i] {
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }

                    // HTTP aggregates (keyed by the *full host* via its
                    // SLD; CDN reattribution happens at query time).
                    let agg = self.http.entry(host).or_default();
                    agg.total += 1;
                    // Sent items: recovered from the URL text (query
                    // strings carry the tracking payloads in this model),
                    // plus the UA that rides every request's headers.
                    // Query-less URLs cannot carry key=value items; skip
                    // the 14-pattern scan for them (the common case).
                    let mut items = if node.url.contains('=') {
                        lib.classify_sent_text(&node.url)
                    } else {
                        Default::default()
                    };
                    items.insert(SentItem::UserAgent);
                    for item in items {
                        if let Some(pos) = SentItem::ALL.iter().position(|&x| x == item) {
                            agg.sent_counts[pos] += 1;
                        }
                    }
                    // Received class: script fetches return JavaScript by
                    // construction (the paper classifies by body/MIME);
                    // other kinds classify their captured body.
                    if node.kind == NodeKind::Script {
                        let pos = ReceivedClass::ALL
                            .iter()
                            .position(|&x| x == ReceivedClass::JavaScript)
                            .expect("class present");
                        agg.recv_counts[pos] += 1;
                    } else if let Some(body) = &node.http_body {
                        if let Some(class) = lib.classify_received(body) {
                            if let Some(pos) = ReceivedClass::ALL.iter().position(|&x| x == class) {
                                agg.recv_counts[pos] += 1;
                            }
                        }
                    }
                    if chain_blocked[i] {
                        agg.chains_blocked += 1;
                    }
                }
                NodeKind::WebSocket => {
                    sockets += 1;
                    let chain = tree.chain(node.id);
                    let chain_hosts: Vec<String> = chain
                        .iter()
                        .take(chain.len() - 1)
                        .map(|c| c.host.clone())
                        .collect();
                    let initiator_host = chain
                        .iter()
                        .rev()
                        .skip(1)
                        .find(|c| c.kind == NodeKind::Script)
                        .map(|c| c.host.clone())
                        .unwrap_or_else(|| tree.root().host.clone());
                    let cross_origin = match (&page, Url::parse(&node.url)) {
                        (Some(p), Ok(u)) => sockscope_urlkit::origin::is_third_party(p, &u),
                        _ => true,
                    };
                    let ws = node.ws.as_ref().expect("socket node has transcript");
                    // Classify: handshake + every sent frame.
                    let mut sent_items = lib.classify_sent_text(&ws.handshake_request);
                    let mut payload_frames = 0usize;
                    for frame in &ws.sent {
                        if frame.is_empty() {
                            continue;
                        }
                        payload_frames += 1;
                        match frame.as_text() {
                            Some(t) => sent_items.extend(lib.classify_sent_text(t)),
                            None => {
                                sent_items.insert(SentItem::Binary);
                            }
                        }
                    }
                    let mut received_classes = BTreeSet::new();
                    let mut received_frames = 0usize;
                    for frame in &ws.received {
                        if frame.is_empty() {
                            continue;
                        }
                        received_frames += 1;
                        let bytes = match frame.as_text() {
                            Some(t) => t.as_bytes().to_vec(),
                            None => match frame {
                                sockscope_inclusion::tree::PayloadRecord::Binary(b) => b.clone(),
                                _ => unreachable!(),
                            },
                        };
                        if let Some(class) = lib.classify_received(&bytes) {
                            received_classes.insert(class);
                        }
                    }
                    self.sockets.push(SocketObservation {
                        url: node.url.clone(),
                        host: node.host.clone(),
                        initiator_host,
                        chain_hosts,
                        cross_origin,
                        sent_items,
                        received_classes,
                        no_data_sent: payload_frames == 0,
                        no_data_received: received_frames == 0,
                        chain_blocked: chain_blocked[i],
                        site_rank: record.rank,
                        site_domain: record.domain.clone(),
                    });
                }
                _ => {}
            }
        }
        sockets
    }

    /// Merges another reduction of the *same crawl* into this one.
    ///
    /// This is the monoid operation behind the sharded crawl driver: each
    /// shard reduces its own sites into a private `CrawlReduction`, and
    /// the shards are folded together with `merge` afterwards. Every
    /// table-feeding field combines:
    ///
    /// * `label_counts` — pointwise sum of the (tagged, untagged) pairs;
    /// * `sockets` — concatenation;
    /// * `http` — per-domain [`HttpAgg::absorb`] (counter sums);
    /// * `sites` — concatenation.
    ///
    /// `CrawlReduction::new(label, pre_patch)` is the identity element.
    /// The operation is associative, and commutative up to the order of
    /// the two positional vectors — call [`CrawlReduction::normalize`]
    /// after the final merge to canonicalize.
    pub fn merge(mut self, other: CrawlReduction) -> CrawlReduction {
        debug_assert_eq!(self.label, other.label, "merging different crawls");
        debug_assert_eq!(self.pre_patch, other.pre_patch, "merging different eras");
        for (host, (tagged, untagged)) in other.label_counts {
            let entry = self.label_counts.entry(host).or_insert((0, 0));
            entry.0 += tagged;
            entry.1 += untagged;
        }
        self.sockets.extend(other.sockets);
        for (host, agg) in other.http {
            match self.http.entry(host) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(agg);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().absorb(&agg);
                }
            }
        }
        self.sites.extend(other.sites);
        self
    }

    /// Sorts the positional vectors into their canonical order: sockets by
    /// (publisher, URL), sites by (rank, pages, sockets). After
    /// normalization, two reductions of the same crawl compare equal
    /// regardless of the thread count, shard count, or arrival order that
    /// produced them — the determinism and snapshot tests rely on this.
    pub fn normalize(&mut self) {
        self.sockets
            .sort_by(|a, b| (&a.site_domain, &a.url).cmp(&(&b.site_domain, &b.url)));
        self.sites.sort_by_key(|s| (s.rank, s.pages, s.sockets));
    }

    /// Merges another reduction into this one (used to pool the labeling
    /// counts of all four crawls before building `D'`).
    pub fn merge_label_counts_into(&self, global: &mut HashMap<String, (u64, u64)>) {
        for (d, (a, n)) in &self.label_counts {
            let e = global.entry(d.clone()).or_insert((0, 0));
            e.0 += a;
            e.1 += n;
        }
    }

    /// Number of sites observed.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Fraction of sites with ≥1 socket.
    pub fn fraction_sites_with_sockets(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.sites.iter().filter(|s| s.sockets > 0).count() as f64 / self.sites.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sockscope_browser::{CdpEvent, FrameId, FramePayload, Initiator, RequestId, ScriptId};

    fn record_with_socket() -> SiteRecord {
        use CdpEvent::*;
        let events = vec![
            ScriptParsed {
                script_id: ScriptId(1),
                url: "https://v2.zopim.com/zopim.js?s=1&p=0".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            RequestWillBeSent {
                request_id: RequestId(1),
                url: "https://v2.zopim.com/collect/beacon.gif?cookie=uid=1".into(),
                resource_type: sockscope_browser::ResourceKind::Image,
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
            WebSocketCreated {
                request_id: RequestId(2),
                url: "wss://ws.zopim.com/socket".into(),
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
            WebSocketWillSendHandshakeRequest {
                request_id: RequestId(2),
                request: b"GET /socket HTTP/1.1\r\nHost: ws.zopim.com\r\nUser-Agent: Mozilla/5.0 Chrome/57\r\n\r\n".to_vec(),
            },
            WebSocketFrameSent {
                request_id: RequestId(2),
                payload: FramePayload::Text("cookie=uid=77; _ga=GA1.2.3&scroll_y=120".into()),
            },
            WebSocketFrameReceived {
                request_id: RequestId(2),
                payload: FramePayload::Text("<html><body>chat</body></html>".into()),
            },
            WebSocketClosed {
                request_id: RequestId(2),
            },
        ];
        let tree = InclusionTree::build("http://business-site-000001.example/", &events);
        SiteRecord {
            site_id: 1,
            domain: "business-site-000001.example".into(),
            rank: 777,
            trees: vec![tree],
        }
    }

    fn engine() -> Engine {
        let (e, errs) = Engine::parse("||v2.zopim.com/collect/$third-party");
        assert!(errs.is_empty());
        e
    }

    #[test]
    fn socket_classified_and_attributed() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        assert_eq!(red.sockets.len(), 1);
        let s = &red.sockets[0];
        assert_eq!(s.host, "ws.zopim.com");
        assert_eq!(s.initiator_host, "v2.zopim.com");
        assert!(s.cross_origin);
        assert!(s.sent_items.contains(&SentItem::UserAgent)); // handshake
        assert!(s.sent_items.contains(&SentItem::Cookie));
        assert!(s.sent_items.contains(&SentItem::ScrollPosition));
        assert!(s.received_classes.contains(&ReceivedClass::Html));
        assert!(!s.no_data_sent);
        assert!(!s.no_data_received);
        // The beacon was tagged, but it is NOT an ancestor of the socket
        // (it's a sibling) — chain not blocked, exactly the §4.2 situation.
        assert!(!s.chain_blocked);
    }

    #[test]
    fn labeling_counts_by_sld() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        // v2.zopim.com observed twice over HTTP: tag script (untagged) +
        // beacon (tagged). Counts stay per-host until the labeler
        // aggregates them.
        let (a, n) = red.label_counts.get("v2.zopim.com").copied().unwrap();
        assert_eq!((a, n), (1, 1));
    }

    #[test]
    fn http_aggregates_fill() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        let agg = red.http.get("v2.zopim.com").unwrap();
        assert_eq!(agg.total, 2);
        // Beacon URL carried a cookie.
        let cookie_pos = SentItem::ALL
            .iter()
            .position(|&i| i == SentItem::Cookie)
            .unwrap();
        assert_eq!(agg.sent_counts[cookie_pos], 1);
        // Both carried a UA.
        assert_eq!(agg.sent_counts[0], 2);
        // The beacon chain was blocked (the beacon itself matches).
        assert_eq!(agg.chains_blocked, 1);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let engine = engine();
        let lib = PiiLibrary::new();
        let record = record_with_socket();

        let mut sequential = CrawlReduction::new("test", true);
        sequential.observe_site(&record, &engine, &lib);
        sequential.observe_site(&record, &engine, &lib);
        sequential.normalize();

        let mut left = CrawlReduction::new("test", true);
        left.observe_site(&record, &engine, &lib);
        let mut right = CrawlReduction::new("test", true);
        right.observe_site(&record, &engine, &lib);
        let mut merged = left.merge(right);
        merged.normalize();

        assert_eq!(merged, sequential);
    }

    #[test]
    fn empty_reduction_is_the_merge_identity() {
        let mut observed = CrawlReduction::new("test", true);
        observed.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        let left = CrawlReduction::new("test", true).merge(observed.clone());
        let right = observed.clone().merge(CrawlReduction::new("test", true));
        assert_eq!(left, observed);
        assert_eq!(right, observed);
    }

    #[test]
    fn site_flags_recorded() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        assert_eq!(red.site_count(), 1);
        assert_eq!(red.sites[0].sockets, 1);
        assert!((red.fraction_sites_with_sockets() - 1.0).abs() < 1e-9);
    }
}
