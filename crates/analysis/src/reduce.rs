//! Streaming reduction of crawl records into compact observations.
//!
//! A paper-scale crawl (100K sites × ≤16 pages) is far too large to keep as
//! inclusion trees. [`CrawlReduction`] consumes each site's trees as they
//! are produced ([`sockscope_crawler::crawl_streaming`]) and keeps only:
//!
//! * labeling counts per second-level domain (`a(d)`, `n(d)` from §3.2),
//! * one [`SocketObservation`] per WebSocket (attribution + classified
//!   payload items + blocking-analysis flags),
//! * aggregate HTTP counters per domain (for Table 5's HTTP/S columns and
//!   the §4.2 chain statistics),
//! * per-site rank/socket flags (for Table 1 and Figure 3).
//!
//! Reductions form a commutative monoid under [`CrawlReduction::merge`]
//! (up to [`CrawlReduction::normalize`], which canonicalizes the order of
//! the two positional vectors): the sharded crawl driver gives each worker
//! a private reduction and folds the shards together afterwards, so no
//! lock is needed while classifying.

use crate::pii::{PiiLibrary, ReceivedClass};
use serde::{de, Deserialize, Serialize, Value};
use sockscope_crawler::{SiteFaults, SiteRecord};
use sockscope_filterlist::{Engine, RequestContext, ResourceType};
use sockscope_inclusion::{InclusionTree, Node, NodeKind};
use sockscope_urlkit::Url;
use sockscope_webmodel::SentItem;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Payload-derived facts about one WebSocket node, as the classification
/// pass consumes them. Produced either from a retained [`WsTranscript`]
/// (batch path) or from eagerly classified frames whose bytes were dropped
/// at emission time (fused path).
///
/// [`WsTranscript`]: sockscope_inclusion::WsTranscript
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WsPayloadSummary {
    /// Items recovered from the handshake + non-empty sent frames.
    pub sent_items: BTreeSet<SentItem>,
    /// Content classes recovered from non-empty received frames.
    pub received_classes: BTreeSet<ReceivedClass>,
    /// Count of non-empty sent payload frames.
    pub payload_frames: usize,
    /// Count of non-empty received payload frames.
    pub received_frames: usize,
}

/// Where a tree's payload-derived classifications come from.
///
/// This is the oracle seam that keeps the batch and stream-fused pipelines
/// decision-identical: [`CrawlReduction::observe_tree_with`] holds the one
/// and only copy of the classification *decisions* (which nodes count,
/// which gates apply, what lands in which table), and delegates every
/// payload *read* to this trait. The batch source reads retained bodies
/// and transcripts off the tree; the fused source reads side tables filled
/// the moment each event was emitted, after which the payload bytes were
/// dropped.
pub trait PayloadSource {
    /// Received-content class of an HTTP-fetched node (`Image`/`Xhr`),
    /// or `None` when no response body was observed or it classified to
    /// nothing.
    fn http_recv_class(&self, node: &Node, lib: &PiiLibrary) -> Option<ReceivedClass>;
    /// Payload-derived facts for a WebSocket node.
    fn ws_summary(&self, node: &Node, lib: &PiiLibrary) -> WsPayloadSummary;
}

/// The batch [`PayloadSource`]: payloads live on the tree itself
/// (`Node::http_body`, `Node::ws`), exactly as the materializing pipeline
/// recorded them.
pub struct TranscriptPayloads;

impl PayloadSource for TranscriptPayloads {
    fn http_recv_class(&self, node: &Node, lib: &PiiLibrary) -> Option<ReceivedClass> {
        node.http_body
            .as_ref()
            .and_then(|body| lib.classify_received(body))
    }

    fn ws_summary(&self, node: &Node, lib: &PiiLibrary) -> WsPayloadSummary {
        let ws = node.ws.as_ref().expect("socket node has transcript");
        // Classify: handshake + every sent frame.
        let mut sent_items = lib.classify_sent_text(&ws.handshake_request);
        let mut payload_frames = 0usize;
        for frame in &ws.sent {
            if frame.is_empty() {
                continue;
            }
            payload_frames += 1;
            match frame.as_text() {
                Some(t) => sent_items.extend(lib.classify_sent_text(t)),
                None => {
                    sent_items.insert(SentItem::Binary);
                }
            }
        }
        let mut received_classes = BTreeSet::new();
        let mut received_frames = 0usize;
        for frame in &ws.received {
            if frame.is_empty() {
                continue;
            }
            received_frames += 1;
            let bytes = match frame.as_text() {
                Some(t) => t.as_bytes().to_vec(),
                None => match frame {
                    sockscope_inclusion::tree::PayloadRecord::Binary(b) => b.clone(),
                    _ => unreachable!(),
                },
            };
            if let Some(class) = lib.classify_received(&bytes) {
                received_classes.insert(class);
            }
        }
        WsPayloadSummary {
            sent_items,
            received_classes,
            payload_frames,
            received_frames,
        }
    }
}

/// One classified WebSocket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SocketObservation {
    /// Endpoint URL.
    pub url: String,
    /// Endpoint hostname.
    pub host: String,
    /// Hostname of the nearest ancestor script (the page host if the
    /// socket was opened by inline first-party code).
    pub initiator_host: String,
    /// Hostnames of every ancestor resource, root → parent.
    pub chain_hosts: Vec<String>,
    /// Socket contacted a third-party SLD.
    pub cross_origin: bool,
    /// Items recovered from the handshake + sent frames by the regex
    /// library.
    pub sent_items: BTreeSet<SentItem>,
    /// Content classes recovered from received frames.
    pub received_classes: BTreeSet<ReceivedClass>,
    /// No payload frames sent (Table 5's "No data" row; the handshake
    /// still carried the UA).
    pub no_data_sent: bool,
    /// No payload frames received.
    pub no_data_received: bool,
    /// Would EasyList+EasyPrivacy have cut this chain post-hoc? (§4.2)
    pub chain_blocked: bool,
    /// Rank of the publisher the socket appeared on.
    pub site_rank: u32,
    /// Publisher domain.
    pub site_domain: String,
}

/// Aggregate HTTP counters for one second-level domain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HttpAgg {
    /// Total requests.
    pub total: u64,
    /// Sent-item counts (indexed by [`SentItem::ALL`] position).
    pub sent_counts: [u64; 15],
    /// Received-class counts (indexed by [`ReceivedClass::ALL`] position).
    pub recv_counts: [u64; 5],
    /// Requests whose chain a blocker would have cut.
    pub chains_blocked: u64,
}

impl HttpAgg {
    /// Adds another aggregate's counters into this one.
    pub fn absorb(&mut self, other: &HttpAgg) {
        self.total += other.total;
        for (mine, theirs) in self.sent_counts.iter_mut().zip(&other.sent_counts) {
            *mine += theirs;
        }
        for (mine, theirs) in self.recv_counts.iter_mut().zip(&other.recv_counts) {
            *mine += theirs;
        }
        self.chains_blocked += other.chains_blocked;
    }
}

/// Per-site flags for Table 1 / Figure 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteFlags {
    /// Alexa-like rank.
    pub rank: u32,
    /// Pages visited.
    pub pages: usize,
    /// Sockets observed on the site.
    pub sockets: usize,
}

/// Crawl-wide failure accounting under fault injection: how many sites
/// were attempted, degraded, or abandoned, how often pages were retried,
/// and the taxonomy of injected errors. Forms a commutative monoid under
/// [`FailureTable::absorb`] (pointwise counter sums), exactly like the
/// rest of [`CrawlReduction`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureTable {
    /// Sites the crawler attempted.
    pub sites_attempted: u64,
    /// Sites that completed with failed or timed-out pages.
    pub sites_degraded: u64,
    /// Sites whose homepage never loaded (no trees at all).
    pub sites_abandoned: u64,
    /// Page visits attempted, counting every retry separately.
    pub pages_attempted: u64,
    /// Pages given up on after exhausting the retry budget.
    pub pages_failed: u64,
    /// Pages skipped because a site's virtual-clock budget ran out.
    pub pages_timed_out: u64,
    /// Re-visits performed after unreachable pages.
    pub retries: u64,
    /// Injected-error-kind histogram across all sites.
    pub errors: BTreeMap<String, u64>,
    /// Virtual ticks consumed (stalls plus backoff) across all sites.
    pub ticks: u64,
}

impl FailureTable {
    /// Folds one site's accounting into the table.
    pub fn observe(&mut self, site: &SiteFaults) {
        self.sites_attempted += 1;
        self.sites_degraded += u64::from(site.degraded);
        self.sites_abandoned += u64::from(site.abandoned);
        self.pages_attempted += site.pages_attempted;
        self.pages_failed += site.pages_failed;
        self.pages_timed_out += site.pages_timed_out;
        self.retries += site.retries;
        for (kind, n) in &site.errors {
            *self.errors.entry(kind.clone()).or_insert(0) += n;
        }
        self.ticks += site.ticks;
    }

    /// Adds another table's counters into this one (the monoid operation;
    /// `FailureTable::default()` is the identity).
    pub fn absorb(&mut self, other: &FailureTable) {
        self.sites_attempted += other.sites_attempted;
        self.sites_degraded += other.sites_degraded;
        self.sites_abandoned += other.sites_abandoned;
        self.pages_attempted += other.pages_attempted;
        self.pages_failed += other.pages_failed;
        self.pages_timed_out += other.pages_timed_out;
        self.retries += other.retries;
        for (kind, n) in &other.errors {
            *self.errors.entry(kind.clone()).or_insert(0) += n;
        }
        self.ticks += other.ticks;
    }

    /// Total injected errors across every kind.
    pub fn total_errors(&self) -> u64 {
        self.errors.values().sum()
    }
}

/// One quarantined site, as the supervisor recorded it: the only trace a
/// hostile site leaves in the crawl result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedSite {
    /// Site index in the universe.
    pub site_id: usize,
    /// Site second-level domain.
    pub domain: String,
    /// Alexa-like rank.
    pub rank: u32,
    /// Stable reason key (`panic` / `deadline` / `budget`).
    pub reason: String,
    /// Attempts spent before giving up.
    pub attempts: u32,
}

/// Crawl-wide quarantine accounting: the sites the supervisor gave up on
/// after exhausting retries against a panic, deadline breach, or budget
/// breach. Forms a commutative monoid under [`QuarantineTable::absorb`]
/// (concatenation, canonicalized by sorting on site id), exactly like the
/// rest of [`CrawlReduction`]. Persisted with the shard it was observed
/// in, so a resumed crawl neither loses nor duplicates entries.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineTable {
    /// Every quarantined site, sorted by site id after normalization.
    pub sites: Vec<QuarantinedSite>,
}

impl QuarantineTable {
    /// Adds another table's entries into this one (the monoid operation;
    /// `QuarantineTable::default()` is the identity).
    pub fn absorb(&mut self, other: QuarantineTable) {
        self.sites.extend(other.sites);
    }

    /// Per-reason counts, for the study report and the bench artifact.
    pub fn reason_counts(&self) -> BTreeMap<&str, u64> {
        let mut counts = BTreeMap::new();
        for site in &self.sites {
            *counts.entry(site.reason.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of quarantined sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }
}

/// The streaming reducer for one crawl.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrawlReduction {
    /// Crawl label (Table 1 row).
    pub label: String,
    /// Was this crawl pre-patch?
    pub pre_patch: bool,
    /// Labeling counts: fully-qualified host → (tagged-A&A, untagged)
    /// observation counts; the labeler aggregates these to 2nd-level
    /// domains (with CDN overrides) when building `D'`.
    pub label_counts: HashMap<String, (u64, u64)>,
    /// All classified sockets.
    pub sockets: Vec<SocketObservation>,
    /// HTTP aggregates per domain.
    pub http: BTreeMap<String, HttpAgg>,
    /// Per-site flags.
    pub sites: Vec<SiteFlags>,
    /// Failure accounting; `None` on fault-free crawls, so their snapshot
    /// JSON is byte-identical to the pre-fault format (and old snapshots
    /// still load).
    pub failures: Option<FailureTable>,
    /// Quarantine accounting; `None` when the supervisor gave up on no
    /// site, so hazard-free snapshots keep the exact pre-supervision
    /// format (and old snapshots still load).
    pub quarantine: Option<QuarantineTable>,
}

// Hand-written serde: the `failures` field is *omitted* when `None`, so
// fault-free reductions serialize to exactly the pre-fault-injection JSON
// (the snapshot-regression fingerprint depends on this), and snapshots
// written before the field existed still deserialize.
impl Serialize for CrawlReduction {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("label".to_string(), self.label.to_value()),
            ("pre_patch".to_string(), self.pre_patch.to_value()),
            ("label_counts".to_string(), self.label_counts.to_value()),
            ("sockets".to_string(), self.sockets.to_value()),
            ("http".to_string(), self.http.to_value()),
            ("sites".to_string(), self.sites.to_value()),
        ];
        if let Some(failures) = &self.failures {
            obj.push(("failures".to_string(), failures.to_value()));
        }
        if let Some(quarantine) = &self.quarantine {
            obj.push(("quarantine".to_string(), quarantine.to_value()));
        }
        Value::Obj(obj)
    }
}

impl Deserialize for CrawlReduction {
    fn from_value(v: &Value) -> Result<CrawlReduction, de::Error> {
        const CTX: &str = "CrawlReduction";
        let obj = de::expect_obj(v, CTX)?;
        Ok(CrawlReduction {
            label: de::field(obj, "label", CTX)?,
            pre_patch: de::field(obj, "pre_patch", CTX)?,
            label_counts: de::field(obj, "label_counts", CTX)?,
            sockets: de::field(obj, "sockets", CTX)?,
            http: de::field(obj, "http", CTX)?,
            sites: de::field(obj, "sites", CTX)?,
            failures: match obj.iter().find(|(k, _)| k == "failures") {
                Some((_, v)) => Option::<FailureTable>::from_value(v)?,
                None => None,
            },
            quarantine: match obj.iter().find(|(k, _)| k == "quarantine") {
                Some((_, v)) => Option::<QuarantineTable>::from_value(v)?,
                None => None,
            },
        })
    }
}

impl CrawlReduction {
    /// Creates an empty reduction.
    pub fn new(label: impl Into<String>, pre_patch: bool) -> CrawlReduction {
        CrawlReduction {
            label: label.into(),
            pre_patch,
            label_counts: HashMap::new(),
            sockets: Vec::new(),
            http: BTreeMap::new(),
            sites: Vec::new(),
            failures: None,
            quarantine: None,
        }
    }

    /// Reduces one site record. `engine` is the combined
    /// EasyList+EasyPrivacy engine (used both for labeling tags and for the
    /// post-hoc blocking analysis); `lib` is the PII library.
    pub fn observe_site(&mut self, record: &SiteRecord, engine: &Engine, lib: &PiiLibrary) {
        let mut site_sockets = 0usize;
        for tree in &record.trees {
            site_sockets += self.observe_tree_with(
                tree,
                record.rank,
                &record.domain,
                engine,
                lib,
                &TranscriptPayloads,
            );
        }
        self.observe_site_flags(record.rank, record.trees.len(), site_sockets);
        self.observe_site_faults(record.faults.as_ref());
    }

    /// Records one site's [`SiteFlags`] row. Split out of
    /// [`CrawlReduction::observe_site`] so the fused pipeline — which never
    /// materializes a [`SiteRecord`] — feeds the identical table.
    pub fn observe_site_flags(&mut self, rank: u32, pages: usize, sockets: usize) {
        self.sites.push(SiteFlags {
            rank,
            pages,
            sockets,
        });
    }

    /// Folds one site's fault accounting (if any) into the failure table;
    /// `None` leaves the table untouched, preserving the fault-free
    /// snapshot format exactly.
    pub fn observe_site_faults(&mut self, faults: Option<&SiteFaults>) {
        if let Some(site_faults) = faults {
            self.failures
                .get_or_insert_with(FailureTable::default)
                .observe(site_faults);
        }
    }

    /// Records one quarantined site — the degraded trace the supervisor
    /// leaves when it gives up. The site contributes to no other table.
    pub fn observe_quarantine(&mut self, record: &sockscope_crawler::QuarantineRecord) {
        self.quarantine
            .get_or_insert_with(QuarantineTable::default)
            .sites
            .push(QuarantinedSite {
                site_id: record.site_id,
                domain: record.domain.clone(),
                rank: record.rank,
                reason: record.reason.as_str().to_string(),
                attempts: record.attempts,
            });
    }

    /// Reduces one inclusion tree, reading payload-derived facts through
    /// `payloads` — the single copy of the classification decision logic
    /// shared by the batch and fused pipelines. Returns the number of
    /// clean sockets observed.
    pub fn observe_tree_with(
        &mut self,
        tree: &InclusionTree,
        site_rank: u32,
        site_domain: &str,
        engine: &Engine,
        lib: &PiiLibrary,
        payloads: &dyn PayloadSource,
    ) -> usize {
        let page = Url::parse(&tree.page_url).ok();
        let mut sockets = 0usize;

        // Precompute per-node "would the lists block this node itself".
        let n = tree.nodes().len();
        let mut node_blocked = vec![false; n];
        for (i, node) in tree.nodes().iter().enumerate() {
            let rtype = match node.kind {
                NodeKind::Script => ResourceType::Script,
                NodeKind::Image => ResourceType::Image,
                NodeKind::Xhr => ResourceType::Xhr,
                _ => continue,
            };
            let (Some(page), Ok(url)) = (page.as_ref(), Url::parse(&node.url)) else {
                continue;
            };
            node_blocked[i] = engine.blocks(&RequestContext {
                url: &url,
                page,
                resource_type: rtype,
            });
        }
        // Chain blocking: a node's chain is blocked if itself or any
        // ancestor is.
        let mut chain_blocked = vec![false; n];
        for (i, node) in tree.nodes().iter().enumerate() {
            let parent_blocked = node.parent.map(|p| chain_blocked[p.0]).unwrap_or(false);
            chain_blocked[i] = parent_blocked || node_blocked[i];
        }

        for (i, node) in tree.nodes().iter().enumerate() {
            match node.kind {
                NodeKind::Script | NodeKind::Image | NodeKind::Xhr => {
                    // Labeling observation (§3.2): tag by the rule lists.
                    if node.host.is_empty() {
                        continue;
                    }
                    // Hosts come out of the URL parser already lower-cased;
                    // only allocate for the (never-in-practice) exception.
                    let host: std::borrow::Cow<'_, str> =
                        if node.host.bytes().any(|b| b.is_ascii_uppercase()) {
                            node.host.to_ascii_lowercase().into()
                        } else {
                            node.host.as_str().into()
                        };
                    // Keyed by FULL hostname: the study's Cloudfront
                    // overrides (§3.2) act on fully-qualified CDN hosts, so
                    // aggregation to 2nd-level domains must happen in the
                    // labeler, where the override table lives.
                    // `get_mut` first so the steady state (host already
                    // seen) touches the map without cloning the key.
                    let entry = match self.label_counts.get_mut(host.as_ref()) {
                        Some(e) => e,
                        None => self
                            .label_counts
                            .entry(host.clone().into_owned())
                            .or_insert((0, 0)),
                    };
                    if node_blocked[i] {
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }

                    // HTTP aggregates (keyed by the *full host* via its
                    // SLD; CDN reattribution happens at query time).
                    let agg = match self.http.get_mut(host.as_ref()) {
                        Some(a) => a,
                        None => self.http.entry(host.into_owned()).or_default(),
                    };
                    agg.total += 1;
                    // Sent items: recovered from the URL text (query
                    // strings carry the tracking payloads in this model),
                    // plus the UA that rides every request's headers.
                    // Query-less URLs cannot carry key=value items; skip
                    // the 14-pattern scan for them (the common case).
                    let mut items = if node.url.contains('=') {
                        lib.classify_sent_text(&node.url)
                    } else {
                        Default::default()
                    };
                    items.insert(SentItem::UserAgent);
                    for item in items {
                        agg.sent_counts[item.index()] += 1;
                    }
                    // Received class: script fetches return JavaScript by
                    // construction (the paper classifies by body/MIME);
                    // other kinds classify their captured body.
                    if node.kind == NodeKind::Script {
                        agg.recv_counts[ReceivedClass::JavaScript.index()] += 1;
                    } else if let Some(class) = payloads.http_recv_class(node, lib) {
                        agg.recv_counts[class.index()] += 1;
                    }
                    if chain_blocked[i] {
                        agg.chains_blocked += 1;
                    }
                }
                NodeKind::WebSocket => {
                    let ws = node.ws.as_ref().expect("socket node has transcript");
                    // Sockets cut down by injected faults (refused
                    // connections, failed handshakes, dropped or stalled
                    // streams) never yielded a complete recording; they are
                    // accounted in the failure table, not classified. On
                    // fault-free crawls every socket is clean (status 101,
                    // no error), so this gate changes nothing.
                    if ws.status != 101 || ws.error.is_some() {
                        continue;
                    }
                    sockets += 1;
                    let chain = tree.chain(node.id);
                    let chain_hosts: Vec<String> = chain
                        .iter()
                        .take(chain.len() - 1)
                        .map(|c| c.host.clone())
                        .collect();
                    let initiator_host = chain
                        .iter()
                        .rev()
                        .skip(1)
                        .find(|c| c.kind == NodeKind::Script)
                        .map(|c| c.host.clone())
                        .unwrap_or_else(|| tree.root().host.clone());
                    let cross_origin = match (&page, Url::parse(&node.url)) {
                        (Some(p), Ok(u)) => sockscope_urlkit::origin::is_third_party(p, &u),
                        _ => true,
                    };
                    let WsPayloadSummary {
                        sent_items,
                        received_classes,
                        payload_frames,
                        received_frames,
                    } = payloads.ws_summary(node, lib);
                    self.sockets.push(SocketObservation {
                        url: node.url.clone(),
                        host: node.host.clone(),
                        initiator_host,
                        chain_hosts,
                        cross_origin,
                        sent_items,
                        received_classes,
                        no_data_sent: payload_frames == 0,
                        no_data_received: received_frames == 0,
                        chain_blocked: chain_blocked[i],
                        site_rank,
                        site_domain: site_domain.to_string(),
                    });
                }
                _ => {}
            }
        }
        sockets
    }

    /// Merges another reduction of the *same crawl* into this one.
    ///
    /// This is the monoid operation behind the sharded crawl driver: each
    /// shard reduces its own sites into a private `CrawlReduction`, and
    /// the shards are folded together with `merge` afterwards. Every
    /// table-feeding field combines:
    ///
    /// * `label_counts` — pointwise sum of the (tagged, untagged) pairs;
    /// * `sockets` — concatenation;
    /// * `http` — per-domain [`HttpAgg::absorb`] (counter sums);
    /// * `sites` — concatenation;
    /// * `failures` — pointwise [`FailureTable::absorb`]; `None` (the
    ///   fault-free case) is the identity, so merging preserves "no
    ///   faults" exactly.
    ///
    /// `CrawlReduction::new(label, pre_patch)` is the identity element.
    /// The operation is associative, and commutative up to the order of
    /// the two positional vectors — call [`CrawlReduction::normalize`]
    /// after the final merge to canonicalize.
    pub fn merge(mut self, other: CrawlReduction) -> CrawlReduction {
        self.absorb(other);
        self
    }

    /// In-place form of [`CrawlReduction::merge`]: folds `other` into
    /// `self` without moving the accumulator. The orchestrator's reducer
    /// stage uses this to fold one finished per-site reduction after
    /// another into a long-lived shard accumulator.
    pub fn absorb(&mut self, other: CrawlReduction) {
        debug_assert_eq!(self.label, other.label, "merging different crawls");
        debug_assert_eq!(self.pre_patch, other.pre_patch, "merging different eras");
        for (host, (tagged, untagged)) in other.label_counts {
            let entry = self.label_counts.entry(host).or_insert((0, 0));
            entry.0 += tagged;
            entry.1 += untagged;
        }
        self.sockets.extend(other.sockets);
        for (host, agg) in other.http {
            match self.http.entry(host) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(agg);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().absorb(&agg);
                }
            }
        }
        self.sites.extend(other.sites);
        self.failures = match (self.failures.take(), other.failures) {
            (Some(mut a), Some(b)) => {
                a.absorb(&b);
                Some(a)
            }
            (a, b) => a.or(b),
        };
        self.quarantine = match (self.quarantine.take(), other.quarantine) {
            (Some(mut a), Some(b)) => {
                a.absorb(b);
                Some(a)
            }
            (a, b) => a.or(b),
        };
    }

    /// Sorts the positional vectors into their canonical order: sockets by
    /// (publisher, URL), sites by (rank, pages, sockets). After
    /// normalization, two reductions of the same crawl compare equal
    /// regardless of the thread count, shard count, or arrival order that
    /// produced them — the determinism and snapshot tests rely on this.
    pub fn normalize(&mut self) {
        self.sockets
            .sort_by(|a, b| (&a.site_domain, &a.url).cmp(&(&b.site_domain, &b.url)));
        self.sites.sort_by_key(|s| (s.rank, s.pages, s.sockets));
        if let Some(q) = &mut self.quarantine {
            q.sites.sort_by_key(|s| s.site_id);
        }
    }

    /// Merges another reduction into this one (used to pool the labeling
    /// counts of all four crawls before building `D'`).
    pub fn merge_label_counts_into(&self, global: &mut HashMap<String, (u64, u64)>) {
        for (d, (a, n)) in &self.label_counts {
            let e = global.entry(d.clone()).or_insert((0, 0));
            e.0 += a;
            e.1 += n;
        }
    }

    /// Number of sites observed.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Fraction of sites with ≥1 socket.
    pub fn fraction_sites_with_sockets(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.sites.iter().filter(|s| s.sockets > 0).count() as f64 / self.sites.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sockscope_browser::{CdpEvent, FrameId, FramePayload, Initiator, RequestId, ScriptId};

    fn record_with_socket() -> SiteRecord {
        use CdpEvent::*;
        let events = vec![
            ScriptParsed {
                script_id: ScriptId(1),
                url: "https://v2.zopim.com/zopim.js?s=1&p=0".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            RequestWillBeSent {
                request_id: RequestId(1),
                url: "https://v2.zopim.com/collect/beacon.gif?cookie=uid=1".into(),
                resource_type: sockscope_browser::ResourceKind::Image,
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
            WebSocketCreated {
                request_id: RequestId(2),
                url: "wss://ws.zopim.com/socket".into(),
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
            WebSocketWillSendHandshakeRequest {
                request_id: RequestId(2),
                request: b"GET /socket HTTP/1.1\r\nHost: ws.zopim.com\r\nUser-Agent: Mozilla/5.0 Chrome/57\r\n\r\n".to_vec().into(),
            },
            WebSocketHandshakeResponseReceived {
                request_id: RequestId(2),
                status: 101,
                response: b"HTTP/1.1 101 Switching Protocols\r\n\r\n".to_vec().into(),
            },
            WebSocketFrameSent {
                request_id: RequestId(2),
                payload: FramePayload::Text("cookie=uid=77; _ga=GA1.2.3&scroll_y=120".into()),
            },
            WebSocketFrameReceived {
                request_id: RequestId(2),
                payload: FramePayload::Text("<html><body>chat</body></html>".into()),
            },
            WebSocketClosed {
                request_id: RequestId(2),
            },
        ];
        let tree = InclusionTree::build("http://business-site-000001.example/", &events);
        SiteRecord {
            site_id: 1,
            domain: "business-site-000001.example".into(),
            rank: 777,
            trees: vec![tree],
            faults: None,
        }
    }

    fn site_faults(retries: u64, failed: u64) -> SiteFaults {
        SiteFaults {
            pages_attempted: 3 + retries,
            pages_failed: failed,
            pages_timed_out: 0,
            retries,
            abandoned: false,
            degraded: failed > 0,
            errors: [("connect_refused".to_string(), retries + failed)]
                .into_iter()
                .collect(),
            ticks: 8 * retries,
        }
    }

    fn engine() -> Engine {
        let (e, errs) = Engine::parse("||v2.zopim.com/collect/$third-party");
        assert!(errs.is_empty());
        e
    }

    #[test]
    fn socket_classified_and_attributed() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        assert_eq!(red.sockets.len(), 1);
        let s = &red.sockets[0];
        assert_eq!(s.host, "ws.zopim.com");
        assert_eq!(s.initiator_host, "v2.zopim.com");
        assert!(s.cross_origin);
        assert!(s.sent_items.contains(&SentItem::UserAgent)); // handshake
        assert!(s.sent_items.contains(&SentItem::Cookie));
        assert!(s.sent_items.contains(&SentItem::ScrollPosition));
        assert!(s.received_classes.contains(&ReceivedClass::Html));
        assert!(!s.no_data_sent);
        assert!(!s.no_data_received);
        // The beacon was tagged, but it is NOT an ancestor of the socket
        // (it's a sibling) — chain not blocked, exactly the §4.2 situation.
        assert!(!s.chain_blocked);
    }

    #[test]
    fn labeling_counts_by_sld() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        // v2.zopim.com observed twice over HTTP: tag script (untagged) +
        // beacon (tagged). Counts stay per-host until the labeler
        // aggregates them.
        let (a, n) = red.label_counts.get("v2.zopim.com").copied().unwrap();
        assert_eq!((a, n), (1, 1));
    }

    #[test]
    fn http_aggregates_fill() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        let agg = red.http.get("v2.zopim.com").unwrap();
        assert_eq!(agg.total, 2);
        // Beacon URL carried a cookie.
        let cookie_pos = SentItem::ALL
            .iter()
            .position(|&i| i == SentItem::Cookie)
            .unwrap();
        assert_eq!(agg.sent_counts[cookie_pos], 1);
        // Both carried a UA.
        assert_eq!(agg.sent_counts[0], 2);
        // The beacon chain was blocked (the beacon itself matches).
        assert_eq!(agg.chains_blocked, 1);
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let engine = engine();
        let lib = PiiLibrary::new();
        let record = record_with_socket();

        let mut sequential = CrawlReduction::new("test", true);
        sequential.observe_site(&record, &engine, &lib);
        sequential.observe_site(&record, &engine, &lib);
        sequential.normalize();

        let mut left = CrawlReduction::new("test", true);
        left.observe_site(&record, &engine, &lib);
        let mut right = CrawlReduction::new("test", true);
        right.observe_site(&record, &engine, &lib);
        let mut merged = left.merge(right);
        merged.normalize();

        assert_eq!(merged, sequential);
    }

    #[test]
    fn empty_reduction_is_the_merge_identity() {
        let mut observed = CrawlReduction::new("test", true);
        observed.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        let left = CrawlReduction::new("test", true).merge(observed.clone());
        let right = observed.clone().merge(CrawlReduction::new("test", true));
        assert_eq!(left, observed);
        assert_eq!(right, observed);
    }

    #[test]
    fn failure_table_accounts_and_merges() {
        let engine = engine();
        let lib = PiiLibrary::new();
        let faulted = SiteRecord {
            faults: Some(site_faults(2, 1)),
            ..record_with_socket()
        };

        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&faulted, &engine, &lib);
        red.observe_site(&record_with_socket(), &engine, &lib);
        let table = red.failures.as_ref().expect("faults observed");
        // Only the faulted record contributes: the fault-free one carries
        // no accounting at all.
        assert_eq!(table.sites_attempted, 1);
        assert_eq!(table.sites_degraded, 1);
        assert_eq!(table.retries, 2);
        assert_eq!(table.pages_failed, 1);
        assert_eq!(table.errors.get("connect_refused"), Some(&3));

        // Merge: None is the identity, Some+Some sums pointwise.
        let merged = CrawlReduction::new("test", true).merge(red.clone());
        assert_eq!(merged.failures, red.failures);
        let mut other = CrawlReduction::new("test", true);
        other.observe_site(&faulted, &engine, &lib);
        let doubled = red.clone().merge(other);
        let t = doubled.failures.as_ref().unwrap();
        assert_eq!(t.sites_attempted, 2);
        assert_eq!(t.retries, 4);
        assert_eq!(t.errors.get("connect_refused"), Some(&6));
    }

    #[test]
    fn failure_table_merge_is_associative() {
        let engine = engine();
        let lib = PiiLibrary::new();
        let make = |retries: u64, failed: u64| {
            let mut red = CrawlReduction::new("test", true);
            red.observe_site(
                &SiteRecord {
                    faults: Some(site_faults(retries, failed)),
                    ..record_with_socket()
                },
                &engine,
                &lib,
            );
            red
        };
        let (a, b, c) = (make(1, 0), make(2, 1), make(5, 3));
        let mut left = a.clone().merge(b.clone()).merge(c.clone());
        let mut right = a.merge(b.merge(c));
        left.normalize();
        right.normalize();
        assert_eq!(left.failures, right.failures);
        assert_eq!(left, right);
    }

    #[test]
    fn fault_free_reduction_serializes_without_failures_field() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        let v = red.to_value();
        assert!(
            v.get("failures").is_none(),
            "fault-free JSON must not grow a failures field"
        );
        // And a pre-fault-format value (no `failures` key) still loads.
        let back = CrawlReduction::from_value(&v).unwrap();
        assert_eq!(back, red);

        let faulted = SiteRecord {
            faults: Some(site_faults(1, 0)),
            ..record_with_socket()
        };
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&faulted, &engine(), &PiiLibrary::new());
        let v = red.to_value();
        assert!(v.get("failures").is_some());
        assert_eq!(CrawlReduction::from_value(&v).unwrap(), red);
    }

    #[test]
    fn quarantine_table_merges_and_serializes() {
        use sockscope_crawler::{QuarantineReason, QuarantineRecord};
        let record = |site_id: usize, reason: QuarantineReason| QuarantineRecord {
            site_id,
            domain: format!("site-{site_id}.example"),
            rank: site_id as u32 + 1,
            reason,
            attempts: 3,
        };

        // No quarantine observed → no key in the JSON, old format intact.
        let clean = CrawlReduction::new("test", true);
        assert!(clean.to_value().get("quarantine").is_none());

        let mut a = CrawlReduction::new("test", true);
        a.observe_quarantine(&record(7, QuarantineReason::Panic));
        a.observe_quarantine(&record(3, QuarantineReason::Deadline));
        let mut b = CrawlReduction::new("test", true);
        b.observe_quarantine(&record(5, QuarantineReason::Budget));

        // Merge both directions, normalize: same canonical table.
        let mut ab = a.clone().merge(b.clone());
        let mut ba = b.clone().merge(a.clone());
        ab.normalize();
        ba.normalize();
        assert_eq!(ab, ba);
        let table = ab.quarantine.as_ref().unwrap();
        assert_eq!(
            table.sites.iter().map(|s| s.site_id).collect::<Vec<_>>(),
            vec![3, 5, 7]
        );
        assert_eq!(
            table.reason_counts(),
            [("budget", 1), ("deadline", 1), ("panic", 1)]
                .into_iter()
                .collect()
        );
        // None is the identity.
        let merged = CrawlReduction::new("test", true).merge(ab.clone());
        assert_eq!(merged.quarantine, ab.quarantine);

        // Round-trips through the snapshot format.
        let v = ab.to_value();
        assert!(v.get("quarantine").is_some());
        assert_eq!(CrawlReduction::from_value(&v).unwrap(), ab);
    }

    #[test]
    fn site_flags_recorded() {
        let mut red = CrawlReduction::new("test", true);
        red.observe_site(&record_with_socket(), &engine(), &PiiLibrary::new());
        assert_eq!(red.site_count(), 1);
        assert_eq!(red.sites[0].sockets, 1);
        assert!((red.fraction_sites_with_sockets() - 1.0).abs() < 1e-9);
    }
}
