//! Tables 1–5 as typed structs + text renderers.
//!
//! Every renderer prints the paper's published value next to the
//! reproduction's, because the goal is shape-matching, not numerology.

use crate::pii::ReceivedClass;
use crate::study::Study;
use sockscope_webmodel::SentItem;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Crawl date label.
    pub label: String,
    /// % of sites with ≥1 WebSocket.
    pub pct_sites_with_sockets: f64,
    /// % of sockets with an A&A initiator in the chain.
    pub pct_sockets_aa_initiated: f64,
    /// Unique A&A initiator domains.
    pub unique_aa_initiators: usize,
    /// % of sockets whose receiver is A&A.
    pub pct_sockets_aa_received: f64,
    /// Unique A&A receiver domains.
    pub unique_aa_receivers: usize,
}

/// Table 1: high-level statistics for the four crawls.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Rows in crawl order.
    pub rows: Vec<Table1Row>,
}

/// The paper's Table 1, for side-by-side rendering.
pub const PAPER_TABLE1: [(&str, f64, f64, usize, f64, usize); 4] = [
    ("Apr 02-05, 2017", 2.1, 60.6, 75, 73.7, 16),
    ("Apr 11-16, 2017", 2.4, 61.3, 63, 74.6, 18),
    ("May 07-12, 2017", 1.6, 60.2, 19, 69.7, 15),
    ("Oct 12-16, 2017", 2.5, 63.4, 23, 63.7, 18),
];

impl Table1 {
    /// Computes the table from a study.
    pub fn compute(study: &Study) -> Table1 {
        let rows = (0..study.crawl_count())
            .map(|idx| {
                let red = &study.reductions[idx];
                let classified = study.classified(idx);
                let n_sockets = classified.len().max(1);
                let aa_init = classified.iter().filter(|c| c.aa_initiated).count();
                let aa_recv = classified.iter().filter(|c| c.aa_received).count();
                let unique_init: BTreeSet<String> = classified
                    .iter()
                    .filter(|c| c.aa_initiated)
                    .flat_map(|c| {
                        c.obs
                            .chain_hosts
                            .iter()
                            .map(|h| study.aa.aggregation_key(h))
                            .filter(|d| study.aa.contains(d))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                let unique_recv: BTreeSet<String> = classified
                    .iter()
                    .filter(|c| c.aa_received)
                    .map(|c| c.receiver.clone())
                    .collect();
                Table1Row {
                    label: red.label.clone(),
                    pct_sites_with_sockets: red.fraction_sites_with_sockets() * 100.0,
                    pct_sockets_aa_initiated: aa_init as f64 / n_sockets as f64 * 100.0,
                    unique_aa_initiators: unique_init.len(),
                    pct_sockets_aa_received: aa_recv as f64 / n_sockets as f64 * 100.0,
                    unique_aa_receivers: unique_recv.len(),
                }
            })
            .collect();
        Table1 { rows }
    }

    /// CSV export (plot-ready; paper values included for overlays).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "crawl,pct_sites_ws,pct_aa_initiated,unique_aa_initiators,pct_aa_received,unique_aa_receivers,paper_pct_sites,paper_pct_init,paper_n_init,paper_pct_recv,paper_n_recv\n",
        );
        for (row, paper) in self.rows.iter().zip(PAPER_TABLE1.iter()) {
            let _ = writeln!(
                out,
                "{},{:.2},{:.2},{},{:.2},{},{},{},{},{},{}",
                row.label,
                row.pct_sites_with_sockets,
                row.pct_sockets_aa_initiated,
                row.unique_aa_initiators,
                row.pct_sockets_aa_received,
                row.unique_aa_receivers,
                paper.1,
                paper.2,
                paper.3,
                paper.4,
                paper.5,
            );
        }
        out
    }

    /// Renders the table with the paper's values alongside.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 1: high-level crawl statistics (ours vs paper)\n\
             {:<18} {:>14} {:>18} {:>16} {:>17} {:>15}",
            "Crawl",
            "%Sites w/WS",
            "%WS A&A-init",
            "#A&A initiators",
            "%WS A&A-recv",
            "#A&A receivers"
        );
        for (row, paper) in self.rows.iter().zip(PAPER_TABLE1.iter()) {
            let _ = writeln!(
                out,
                "{:<18} {:>6.1} ({:>4.1}) {:>10.1} ({:>5.1}) {:>8} ({:>3}) {:>9.1} ({:>5.1}) {:>7} ({:>3})",
                row.label,
                row.pct_sites_with_sockets,
                paper.1,
                row.pct_sockets_aa_initiated,
                paper.2,
                row.unique_aa_initiators,
                paper.3,
                row.pct_sockets_aa_received,
                paper.4,
                row.unique_aa_receivers,
                paper.5,
            );
        }
        out
    }
}

/// One initiator row of Table 2.
#[derive(Debug, Clone)]
pub struct InitiatorRow {
    /// Initiator domain.
    pub initiator: String,
    /// Initiator is A&A.
    pub is_aa: bool,
    /// Unique receiver domains contacted.
    pub receivers_total: usize,
    /// …of which A&A.
    pub receivers_aa: usize,
    /// Total sockets initiated.
    pub sockets: usize,
}

/// Table 2: top initiators by unique receivers (union of all crawls).
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Rows, sorted by `receivers_total` descending.
    pub rows: Vec<InitiatorRow>,
}

impl Table2 {
    /// Computes the table.
    pub fn compute(study: &Study, top: usize) -> Table2 {
        let mut map: BTreeMap<String, (BTreeSet<String>, usize)> = BTreeMap::new();
        for idx in 0..study.crawl_count() {
            for c in study.classified(idx) {
                let e = map.entry(c.initiator.clone()).or_default();
                e.0.insert(c.receiver.clone());
                e.1 += 1;
            }
        }
        let mut rows: Vec<InitiatorRow> = map
            .into_iter()
            .map(|(initiator, (receivers, sockets))| InitiatorRow {
                is_aa: study.aa.contains(&initiator),
                receivers_aa: receivers.iter().filter(|r| study.aa.contains(r)).count(),
                receivers_total: receivers.len(),
                initiator,
                sockets,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.receivers_total
                .cmp(&a.receivers_total)
                .then(b.sockets.cmp(&a.sockets))
                .then(a.initiator.cmp(&b.initiator))
        });
        rows.truncate(top);
        Table2 { rows }
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 2: top WebSocket initiators by unique receivers (A&A in [brackets])\n",
        );
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>8} {:>10}",
            "Initiator", "#Receivers", "#A&A", "Sockets"
        );
        for r in &self.rows {
            let name = if r.is_aa {
                format!("[{}]", r.initiator)
            } else {
                r.initiator.clone()
            };
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>8} {:>10}",
                name, r.receivers_total, r.receivers_aa, r.sockets
            );
        }
        out
    }
}

/// One receiver row of Table 3.
#[derive(Debug, Clone)]
pub struct ReceiverRow {
    /// Receiver domain.
    pub receiver: String,
    /// Unique initiator domains.
    pub initiators_total: usize,
    /// …of which A&A.
    pub initiators_aa: usize,
    /// Total sockets received.
    pub sockets: usize,
}

/// Table 3: top A&A receivers by unique initiators (union of all crawls).
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Rows, sorted by `initiators_total` descending.
    pub rows: Vec<ReceiverRow>,
}

impl Table3 {
    /// Computes the table.
    pub fn compute(study: &Study, top: usize) -> Table3 {
        let mut map: BTreeMap<String, (BTreeSet<String>, usize)> = BTreeMap::new();
        for idx in 0..study.crawl_count() {
            for c in study.classified(idx) {
                if !c.aa_received {
                    continue;
                }
                let e = map.entry(c.receiver.clone()).or_default();
                e.0.insert(c.initiator.clone());
                e.1 += 1;
            }
        }
        let mut rows: Vec<ReceiverRow> = map
            .into_iter()
            .map(|(receiver, (initiators, sockets))| ReceiverRow {
                initiators_aa: initiators.iter().filter(|i| study.aa.contains(i)).count(),
                initiators_total: initiators.len(),
                receiver,
                sockets,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.initiators_total
                .cmp(&a.initiators_total)
                .then(b.sockets.cmp(&a.sockets))
                .then(a.receiver.cmp(&b.receiver))
        });
        rows.truncate(top);
        Table3 { rows }
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 3: top A&A WebSocket receivers by unique initiators\n");
        let _ = writeln!(
            out,
            "{:<28} {:>11} {:>8} {:>10}",
            "Receiver", "#Initiators", "#A&A", "Sockets"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<28} {:>11} {:>8} {:>10}",
                r.receiver, r.initiators_total, r.initiators_aa, r.sockets
            );
        }
        out
    }
}

/// One pair row of Table 4.
#[derive(Debug, Clone)]
pub struct PairRow {
    /// Initiator domain.
    pub initiator: String,
    /// Receiver domain.
    pub receiver: String,
    /// Socket count.
    pub sockets: usize,
}

/// Table 4: top initiator/receiver pairs among A&A sockets, with the
/// self-pair total broken out like the paper's last row.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Distinct-party pairs, sorted by socket count.
    pub rows: Vec<PairRow>,
    /// Total sockets where initiator == receiver ("A&A domain to itself").
    pub self_pair_sockets: usize,
}

impl Table4 {
    /// Computes the table.
    pub fn compute(study: &Study, top: usize) -> Table4 {
        let mut map: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut self_pairs = 0usize;
        for idx in 0..study.crawl_count() {
            for c in study.classified(idx) {
                if !c.is_aa_socket() {
                    continue;
                }
                if c.initiator == c.receiver {
                    self_pairs += 1;
                } else {
                    *map.entry((c.initiator.clone(), c.receiver.clone()))
                        .or_default() += 1;
                }
            }
        }
        let mut rows: Vec<PairRow> = map
            .into_iter()
            .map(|((initiator, receiver), sockets)| PairRow {
                initiator,
                receiver,
                sockets,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.sockets
                .cmp(&a.sockets)
                .then(a.initiator.cmp(&b.initiator))
                .then(a.receiver.cmp(&b.receiver))
        });
        rows.truncate(top);
        Table4 {
            rows,
            self_pair_sockets: self_pairs,
        }
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut out = String::from("Table 4: top initiator/receiver pairs among A&A sockets\n");
        let _ = writeln!(
            out,
            "{:<28} {:<28} {:>10}",
            "Initiator", "Receiver", "Sockets"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<28} {:<28} {:>10}",
                r.initiator, r.receiver, r.sockets
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:<28} {:>10}",
            "A&A domain to itself", "", self.self_pair_sockets
        );
        out
    }
}

/// One item row of Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Row {
    /// Item label.
    pub item: &'static str,
    /// Count over A&A WebSockets.
    pub ws_count: u64,
    /// % of A&A WebSockets.
    pub ws_pct: f64,
    /// Count over HTTP/S requests to A&A domains.
    pub http_count: u64,
    /// % of those requests.
    pub http_pct: f64,
}

/// Table 5: items sent/received over A&A sockets vs HTTP/S.
#[derive(Debug, Clone)]
pub struct Table5 {
    /// Sent-item rows (Table 5 order), then the "No data" row.
    pub sent: Vec<Table5Row>,
    /// Received-class rows, then "No data".
    pub received: Vec<Table5Row>,
}

/// The paper's Table 5 percentages (WS column, then HTTP/S column), for
/// side-by-side rendering: sent items in `SentItem::ALL` order + No data.
pub const PAPER_TABLE5_SENT: [(&str, f64, f64); 16] = [
    ("User Agent", 100.0, 100.0),
    ("Cookie", 69.90, 22.77),
    ("IP", 6.62, 0.90),
    ("User ID", 4.30, 1.12),
    ("Device", 3.61, 0.18),
    ("Screen", 3.59, 0.10),
    ("Browser", 3.40, 0.09),
    ("Viewport", 3.40, 0.34),
    ("Scroll Position", 3.40, 0.00),
    ("Orientation", 3.40, 0.00),
    ("First Seen", 3.40, 0.01),
    ("Resolution", 3.40, 0.13),
    ("Language", 1.79, 0.92),
    ("DOM", 1.63, 0.01),
    ("Binary", 0.98, 0.01),
    ("No data", 17.84, f64::NAN),
];

/// Paper's received rows: HTML, JSON, JavaScript, Image, Binary, No data.
pub const PAPER_TABLE5_RECEIVED: [(&str, f64, f64); 6] = [
    ("HTML", 47.16, 11.61),
    ("JSON", 12.81, 1.63),
    ("JavaScript", 0.88, 27.04),
    ("Image", 0.31, 21.34),
    ("Binary", 0.25, 0.50),
    ("No data", 21.33, f64::NAN),
];

impl Table5 {
    /// Computes the table over the union of all crawls.
    pub fn compute(study: &Study) -> Table5 {
        // ---- WS side: per A&A socket. ----
        let mut ws_total = 0u64;
        let mut ws_sent = [0u64; 15];
        let mut ws_nodata_sent = 0u64;
        let mut ws_recv = [0u64; 5];
        let mut ws_nodata_recv = 0u64;
        for idx in 0..study.crawl_count() {
            for c in study.classified(idx) {
                if !c.is_aa_socket() {
                    continue;
                }
                ws_total += 1;
                for (pos, item) in SentItem::ALL.iter().enumerate() {
                    if c.obs.sent_items.contains(item) {
                        ws_sent[pos] += 1;
                    }
                }
                if c.obs.no_data_sent {
                    ws_nodata_sent += 1;
                }
                for (pos, class) in ReceivedClass::ALL.iter().enumerate() {
                    if c.obs.received_classes.contains(class) {
                        ws_recv[pos] += 1;
                    }
                }
                if c.obs.no_data_received {
                    ws_nodata_recv += 1;
                }
            }
        }

        // ---- HTTP side: requests to A&A domains, all crawls. ----
        let mut http_total = 0u64;
        let mut http_sent = [0u64; 15];
        let mut http_recv = [0u64; 5];
        for red in &study.reductions {
            for (host, agg) in &red.http {
                if !study.aa.is_aa_host(host) {
                    continue;
                }
                http_total += agg.total;
                for (sum, count) in http_sent.iter_mut().zip(&agg.sent_counts) {
                    *sum += count;
                }
                for (sum, count) in http_recv.iter_mut().zip(&agg.recv_counts) {
                    *sum += count;
                }
            }
        }

        let pct = |count: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                count as f64 / total as f64 * 100.0
            }
        };

        let mut sent: Vec<Table5Row> = SentItem::ALL
            .iter()
            .enumerate()
            .map(|(i, item)| Table5Row {
                item: item.label(),
                ws_count: ws_sent[i],
                ws_pct: pct(ws_sent[i], ws_total),
                http_count: http_sent[i],
                http_pct: pct(http_sent[i], http_total),
            })
            .collect();
        sent.push(Table5Row {
            item: "No data",
            ws_count: ws_nodata_sent,
            ws_pct: pct(ws_nodata_sent, ws_total),
            http_count: 0,
            http_pct: f64::NAN,
        });

        let mut received: Vec<Table5Row> = ReceivedClass::ALL
            .iter()
            .enumerate()
            .map(|(i, class)| Table5Row {
                item: class.label(),
                ws_count: ws_recv[i],
                ws_pct: pct(ws_recv[i], ws_total),
                http_count: http_recv[i],
                http_pct: pct(http_recv[i], http_total),
            })
            .collect();
        received.push(Table5Row {
            item: "No data",
            ws_count: ws_nodata_recv,
            ws_pct: pct(ws_nodata_recv, ws_total),
            http_count: 0,
            http_pct: f64::NAN,
        });

        Table5 { sent, received }
    }

    /// CSV export of both halves.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("direction,item,ws_count,ws_pct,http_count,http_pct\n");
        for row in &self.sent {
            let _ = writeln!(
                out,
                "sent,{},{},{:.3},{},{:.3}",
                row.item, row.ws_count, row.ws_pct, row.http_count, row.http_pct
            );
        }
        for row in &self.received {
            let _ = writeln!(
                out,
                "received,{},{},{:.3},{},{:.3}",
                row.item, row.ws_count, row.ws_pct, row.http_count, row.http_pct
            );
        }
        out
    }

    /// Looks up a sent row by label.
    pub fn sent_row(&self, label: &str) -> Option<&Table5Row> {
        self.sent.iter().find(|r| r.item == label)
    }

    /// Looks up a received row by label.
    pub fn received_row(&self, label: &str) -> Option<&Table5Row> {
        self.received.iter().find(|r| r.item == label)
    }

    /// Renders both halves with the paper's percentages alongside.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 5: items sent/received over A&A WebSockets vs HTTP/S\n(ours, paper in parentheses)\n\nSent item             WS count    WS%            HTTP count  HTTP%\n",
        );
        for (row, paper) in self.sent.iter().zip(PAPER_TABLE5_SENT.iter()) {
            let _ = writeln!(
                out,
                "{:<20} {:>9} {:>6.2} ({:>6.2}) {:>11} {:>6.2} ({:>6.2})",
                row.item, row.ws_count, row.ws_pct, paper.1, row.http_count, row.http_pct, paper.2
            );
        }
        out.push_str("\nReceived item         WS count    WS%            HTTP count  HTTP%\n");
        for (row, paper) in self.received.iter().zip(PAPER_TABLE5_RECEIVED.iter()) {
            let _ = writeln!(
                out,
                "{:<20} {:>9} {:>6.2} ({:>6.2}) {:>11} {:>6.2} ({:>6.2})",
                row.item, row.ws_count, row.ws_pct, paper.1, row.http_count, row.http_pct, paper.2
            );
        }
        out
    }
}
