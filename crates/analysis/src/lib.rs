//! # sockscope-analysis
//!
//! The measurement-analysis stage: everything between raw crawl data and
//! the paper's tables and figures.
//!
//! * [`pii`] — the regex library that classifies payload content into the
//!   Table 5 taxonomy (built on the `sockscope-redlite` engine, mirroring
//!   §4.3's "large library of regular expressions").
//! * [`reduce`] — streaming reduction of per-site crawl records into the
//!   compact observations every table needs (labeling counts, socket
//!   attributions, payload classifications, HTTP comparisons).
//! * [`study`] — the four-crawl study driver: crawls, labels (`D'` with
//!   the 10% threshold and Cloudfront overrides), classifies, aggregates.
//! * [`checkpoint`] — crash-safe checkpointed crawls: per-shard durable
//!   journal segments (`sockscope-journal`) with a quarantine-and-resume
//!   path whose output is byte-identical to an uninterrupted run.
//! * [`tables`] — Tables 1–5 as typed structs with text renderers that
//!   print the paper's values next to the reproduction's.
//! * [`figures`] — Figure 3 (sockets by Alexa rank) as a plottable series.
//! * [`textstats`] — the §4.1/§4.2 prose statistics (cross-origin share,
//!   unique-domain counts, blocking fractions).
//! * [`categories`] / [`churn`] — extensions beyond the paper's tables: the
//!   per-Alexa-category cut the §3.3 sample design enables, and the full
//!   crawl-over-crawl presence matrix generalizing §4.1's "56 initiators
//!   disappeared" observation.
//! * [`longitudinal`] — era-parametric N-crawl studies over any
//!   [`sockscope_webgen::EraTimeline`]: per-era drift reports
//!   ([`longitudinal::EraDelta`]) and delta-compressed snapshot lineage
//!   ([`longitudinal::SnapshotLineage`]) with byte-identical
//!   reconstruction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod checkpoint;
pub mod churn;
pub mod figures;
pub mod fused;
pub mod json;
pub mod longitudinal;
pub mod pii;
pub mod reduce;
pub mod snapshot;
pub mod study;
pub mod tables;
pub mod textstats;

pub use checkpoint::{CheckpointError, CheckpointOptions, KillPlan, ResumeReport};
pub use fused::FusedShard;
pub use longitudinal::{run_longitudinal, EraDelta, LongitudinalRun, SnapshotLineage};
pub use pii::PiiLibrary;
pub use reduce::{
    CrawlReduction, PayloadSource, SocketObservation, TranscriptPayloads, WsPayloadSummary,
};
pub use snapshot::StudySnapshot;
pub use study::{Study, StudyConfig};
