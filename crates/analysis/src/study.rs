//! The four-crawl study driver.
//!
//! [`Study::run`] reproduces the paper's end-to-end pipeline:
//!
//! 1. generate the synthetic web (one universe, four crawl eras);
//! 2. crawl each era with the instrumented browser. The default driver is
//!    the **work-stealing pipelined orchestrator**
//!    ([`sockscope_crawler::crawl_orchestrated`]): each worker owns a
//!    private stream-fused [`FusedShard`](crate::fused::FusedShard) that
//!    the browser pushes CDP events into as it emits them — payload bytes
//!    are classified and dropped on the spot, no
//!    [`SiteRecord`](sockscope_crawler::SiteRecord) is ever materialized,
//!    and the per-site hot path takes no lock. Finished per-site
//!    reductions flow through a bounded queue to a reduce stage that
//!    folds them in ascending site order and normalizes, which makes the
//!    result independent of worker count, steal order, and queue sizes;
//! 3. pool the labeling observations and build the A&A domain set `D'`
//!    (10% threshold + Cloudfront overrides, §3.2);
//! 4. expose classified sockets and aggregates to the table/figure
//!    generators.
//!
//! [`Study::run_static_shards`] keeps the static shard→thread-pool fused
//! driver as a reference path (`--static-shards` on the CLI),
//! [`Study::run_reference`] the record-materializing sharded pipeline (on
//! the browser's buffering `visit_reference` path), and
//! [`Study::run_streaming`] the original single-reduction-behind-a-mutex
//! pipeline; the determinism suite asserts all four produce byte-identical
//! results.

use crate::pii::PiiLibrary;
use crate::reduce::{CrawlReduction, SocketObservation};
use sockscope_crawler::CrawlConfig;
use sockscope_faults::FaultProfile;
use sockscope_filterlist::{AaDomainSet, Engine, Labeler};
use sockscope_webgen::{EraTimeline, SyntheticWeb, WebGenConfig};
use std::sync::Mutex;

/// Study configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StudyConfig {
    /// Universe seed.
    pub seed: u64,
    /// Number of publisher sites (the paper used ~100K; shapes are
    /// scale-free down to a few thousand).
    pub n_sites: usize,
    /// Crawl worker threads.
    pub threads: usize,
    /// Links per site beyond the homepage.
    pub max_links: usize,
    /// Fault profile for the crawl; `None` (or an all-zero profile) runs
    /// the perfectly reliable network and produces snapshots byte-identical
    /// to the pre-fault-injection pipeline.
    pub faults: Option<FaultProfile>,
    /// Crawl via the work-stealing pipelined orchestrator (the default);
    /// `false` selects the static shard→thread-pool fused driver. Both
    /// produce byte-identical studies — like every knob below, this is
    /// scheduling-only and excluded from checkpoint fingerprints.
    pub orchestrated: bool,
    /// Orchestrator worker-thread override; `None` follows `threads`.
    pub workers: Option<usize>,
    /// Orchestrator result-queue capacity (backpressure depth).
    pub queue_depth: usize,
    /// The crawl schedule. Defaults to the pinned four-crawl paper preset
    /// ([`EraTimeline::paper`]); longitudinal runs swap in
    /// [`EraTimeline::synthetic`] (e.g. via the CLI's `--eras N`).
    pub timeline: EraTimeline,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            seed: 0x50C2_5C0F,
            n_sites: 5_000,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_links: 15,
            faults: None,
            orchestrated: true,
            workers: None,
            queue_depth: 64,
            timeline: EraTimeline::paper(),
        }
    }
}

/// A socket joined with its A&A attribution under `D'`.
#[derive(Debug, Clone)]
pub struct ClassifiedSocket<'a> {
    /// The underlying observation.
    pub obs: &'a SocketObservation,
    /// Initiator aggregation key (2nd-level domain / CDN-mapped company).
    pub initiator: String,
    /// Receiver aggregation key.
    pub receiver: String,
    /// Some ancestor resource is A&A (§3.2's branch descent).
    pub aa_initiated: bool,
    /// The receiver is A&A.
    pub aa_received: bool,
}

impl ClassifiedSocket<'_> {
    /// At least one endpoint party is A&A.
    pub fn is_aa_socket(&self) -> bool {
        self.aa_initiated || self.aa_received
    }
}

/// The completed study.
pub struct Study {
    /// One reduction per crawl, in Table 1 order.
    pub reductions: Vec<CrawlReduction>,
    /// The labeled A&A domain set `D'`.
    pub aa: AaDomainSet,
    /// The combined filter engine used for labeling and blocking analysis
    /// (empty on studies restored from snapshots — every engine-derived
    /// quantity is baked into the reductions).
    pub engine: Engine,
    /// The manual host → company override table (§3.2), kept for snapshot
    /// capture.
    pub cdn_overrides: Vec<(String, String)>,
}

/// Which parallel reduction pipeline drives the crawl.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pipeline {
    /// The work-stealing pipelined orchestrator over per-worker
    /// [`crate::fused::FusedShard`] sinks: per-site stealing, bounded
    /// queue to a single reduce stage folding in ascending site order.
    /// The default.
    Orchestrated,
    /// Per-shard [`crate::fused::FusedShard`] sinks fed straight off the
    /// browser's event stream — no site records, payload bytes dropped at
    /// classification time. Static shard→thread binding; the reference
    /// driver the orchestrator is diffed against.
    Fused,
    /// Per-shard private reductions over materialized site records, with
    /// the browser on its buffering `visit_reference` path. Kept as the
    /// reference implementation for differential tests.
    Reference,
    /// One shared reduction behind a mutex, locked on every site. The
    /// original pipeline, kept for the determinism suite.
    Streaming,
}

/// Shards per worker thread for the sharded pipeline: enough slack for
/// load balancing (a worker that draws slow shards is backfilled by the
/// others) without fragmenting the merge.
pub(crate) const SHARDS_PER_THREAD: usize = 4;

impl Study {
    /// Runs the full study. The default driver is the work-stealing
    /// pipelined orchestrator over stream-fused per-worker shards;
    /// `StudyConfig { orchestrated: false, .. }` selects the static
    /// shard→thread-pool fused driver instead. Both are byte-identical.
    pub fn run(config: &StudyConfig) -> Study {
        if config.orchestrated {
            Study::run_pipeline(config, Pipeline::Orchestrated)
        } else {
            Study::run_pipeline(config, Pipeline::Fused)
        }
    }

    /// Runs the full study on the static shard→thread-pool stream-fused
    /// driver, regardless of `config.orchestrated` — the reference path
    /// the orchestrator identity suite diffs against.
    pub fn run_static_shards(config: &StudyConfig) -> Study {
        Study::run_pipeline(config, Pipeline::Fused)
    }

    /// Derives the orchestrator's concurrency config from a study config:
    /// `workers` follows `threads` unless overridden, and the in-flight
    /// cap stays on auto (`workers + queue_depth`).
    pub fn orchestrator_config(config: &StudyConfig) -> sockscope_crawler::OrchestratorConfig {
        sockscope_crawler::OrchestratorConfig {
            workers: config.workers.unwrap_or_else(|| config.threads.max(1)),
            queue_depth: config.queue_depth,
            ..sockscope_crawler::OrchestratorConfig::default()
        }
    }

    /// Runs the full study on the record-materializing reference pipeline:
    /// the browser buffers every CDP event (`visit_reference`), the crawler
    /// assembles full [`SiteRecord`](sockscope_crawler::SiteRecord)s, and
    /// shards reduce them in batch. Produces byte-identical results to
    /// [`Study::run`]; the stream-identity suite diffs the two.
    pub fn run_reference(config: &StudyConfig) -> Study {
        Study::run_pipeline(config, Pipeline::Reference)
    }

    /// Runs the full study on the original streaming pipeline (one
    /// reduction behind a mutex, classification inside the critical
    /// section). Produces byte-identical results to [`Study::run`]; kept
    /// for differential tests and as the baseline in the `crawl_reduction`
    /// benchmark.
    pub fn run_streaming(config: &StudyConfig) -> Study {
        Study::run_pipeline(config, Pipeline::Streaming)
    }

    /// Builds the synthetic universe a config describes (shared by the
    /// in-memory and checkpointed drivers — and the perf harness — so all
    /// of them crawl the same web).
    pub fn universe(config: &StudyConfig) -> SyntheticWeb {
        SyntheticWeb::new(WebGenConfig {
            seed: config.seed,
            n_sites: config.n_sites,
            ..WebGenConfig::default()
        })
    }

    /// Parses the universe's generated filter lists into the combined
    /// labeling/blocking engine.
    pub fn engine_for(web: &SyntheticWeb) -> Engine {
        let (engine, errs) = Engine::parse_many(&[&web.easylist(), &web.easyprivacy()]);
        debug_assert!(errs.is_empty(), "generated lists must parse: {errs:?}");
        engine
    }

    /// Derives the crawl config a study config implies.
    pub fn crawl_config(config: &StudyConfig) -> CrawlConfig {
        CrawlConfig {
            seed: config.seed ^ 0xC4A31,
            max_links: config.max_links,
            threads: config.threads,
            faults: config.faults.clone(),
            visit_reference: false,
        }
    }

    /// Finishes a study from its four normalized reductions: pools the
    /// labeling observations, thresholds `D'` (§3.2), and packages the
    /// result. Shared by every pipeline, including resume — identical
    /// reductions always yield an identical study.
    pub fn assemble(web: &SyntheticWeb, engine: Engine, reductions: Vec<CrawlReduction>) -> Study {
        let cdn_overrides = web.catalog().manual_overrides();
        let mut labeler = Labeler::new();
        for (host, company) in &cdn_overrides {
            labeler = labeler.with_cdn_override(host.clone(), company.clone());
        }
        for red in &reductions {
            for (host, (a, n)) in &red.label_counts {
                labeler.observe_counts(host, *a, *n);
            }
        }
        let aa = labeler.finalize_paper();

        Study {
            reductions,
            aa,
            engine,
            cdn_overrides,
        }
    }

    fn run_pipeline(config: &StudyConfig, pipeline: Pipeline) -> Study {
        let web = Study::universe(config);
        let base_engine = Study::engine_for(&web);
        // On evolving timelines the lists differ per era, so each crawl
        // labels and blocks against the lists as published at that era;
        // frozen timelines (the paper preset) share one engine, which
        // keeps that path byte-identical to the pre-timeline pipeline.
        let evolving = config.timeline.evolves();
        let mut crawl_config = Study::crawl_config(config);
        if pipeline == Pipeline::Reference {
            crawl_config.visit_reference = true;
        }

        let mut reductions = Vec::new();
        for era in config.timeline.eras() {
            let era_web = web.for_era(era.clone());
            let era_engine = evolving.then(|| Study::engine_for(&era_web));
            let engine = era_engine.as_ref().unwrap_or(&base_engine);
            let make_extensions =
                || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(era));
            let mut reduction = match pipeline {
                Pipeline::Orchestrated => {
                    let orch = Study::orchestrator_config(config);
                    sockscope_crawler::crawl_orchestrated(
                        &era_web,
                        &crawl_config,
                        &orch,
                        &make_extensions,
                        // Each worker owns its classification context; the
                        // reduce stage folds the per-site reductions they
                        // emit in ascending site order.
                        &|| crate::fused::FusedShard::new(era.label(), era.pre_patch(), engine),
                        &|worker: &mut crate::fused::FusedShard<'_>| worker.take_site_reduction(),
                        &|| CrawlReduction::new(era.label(), era.pre_patch()),
                        &|acc: &mut CrawlReduction, site| acc.absorb(site),
                    )
                }
                Pipeline::Fused => {
                    let shards = config.threads.max(1) * SHARDS_PER_THREAD;
                    sockscope_crawler::crawl_sharded_sink(
                        &era_web,
                        &crawl_config,
                        shards,
                        &make_extensions,
                        // Each shard owns its reduction AND its
                        // classification context; only the filter engine
                        // is shared (read-only).
                        &|_shard| {
                            crate::fused::FusedShard::new(era.label(), era.pre_patch(), engine)
                        },
                    )
                    .into_iter()
                    .map(crate::fused::FusedShard::into_reduction)
                    .fold(
                        CrawlReduction::new(era.label(), era.pre_patch()),
                        CrawlReduction::merge,
                    )
                }
                Pipeline::Reference => {
                    let shards = config.threads.max(1) * SHARDS_PER_THREAD;
                    sockscope_crawler::crawl_sharded(
                        &era_web,
                        &crawl_config,
                        shards,
                        &make_extensions,
                        &|_shard| {
                            (
                                CrawlReduction::new(era.label(), era.pre_patch()),
                                PiiLibrary::new(),
                            )
                        },
                        &|acc: &mut (CrawlReduction, PiiLibrary), record| {
                            acc.0.observe_site(&record, engine, &acc.1);
                        },
                    )
                    .into_iter()
                    .map(|(reduction, _lib)| reduction)
                    .fold(
                        CrawlReduction::new(era.label(), era.pre_patch()),
                        CrawlReduction::merge,
                    )
                }
                Pipeline::Streaming => {
                    let lib = PiiLibrary::new();
                    let reduction = Mutex::new(CrawlReduction::new(era.label(), era.pre_patch()));
                    sockscope_crawler::crawl_streaming(
                        &era_web,
                        &crawl_config,
                        &make_extensions,
                        &|record| {
                            reduction
                                .lock()
                                .expect("reduction lock")
                                .observe_site(&record, engine, &lib);
                        },
                    );
                    reduction.into_inner().expect("reduction lock")
                }
            };
            // Deterministic ordering regardless of thread interleaving
            // (streaming) or shard count (sharded).
            reduction.normalize();
            reductions.push(reduction);
        }

        Study::assemble(&web, base_engine, reductions)
    }

    /// Classifies every socket of crawl `idx` under `D'`.
    pub fn classified(&self, idx: usize) -> Vec<ClassifiedSocket<'_>> {
        self.reductions[idx]
            .sockets
            .iter()
            .map(|obs| self.classify(obs))
            .collect()
    }

    /// Classifies a single observation.
    pub fn classify<'a>(&'a self, obs: &'a SocketObservation) -> ClassifiedSocket<'a> {
        let receiver = self.aa.aggregation_key(&obs.host);
        let initiator = self.aa.aggregation_key(&obs.initiator_host);
        let aa_initiated = obs.chain_hosts.iter().any(|h| self.aa.is_aa_host(h));
        let aa_received = self.aa.is_aa_host(&obs.host);
        ClassifiedSocket {
            obs,
            initiator,
            receiver,
            aa_initiated,
            aa_received,
        }
    }

    /// Number of crawls (one per timeline era; 4 for the paper preset).
    pub fn crawl_count(&self) -> usize {
        self.reductions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// One shared study for the whole test module — Study::run is the
    /// expensive part, the assertions are cheap.
    fn small_study() -> &'static Study {
        static STUDY: OnceLock<Study> = OnceLock::new();
        STUDY.get_or_init(|| {
            Study::run(&StudyConfig {
                n_sites: 900,
                threads: 8,
                ..StudyConfig::default()
            })
        })
    }

    #[test]
    fn study_runs_end_to_end() {
        let study = small_study();
        assert_eq!(study.crawl_count(), 4);
        // Every crawl saw every site.
        for red in &study.reductions {
            assert_eq!(red.site_count(), 900);
        }
        // Sockets exist in every era (chat survives the patch).
        for idx in 0..4 {
            assert!(
                !study.reductions[idx].sockets.is_empty(),
                "crawl {idx} saw no sockets"
            );
        }
    }

    #[test]
    fn labeling_finds_the_ecosystem() {
        let study = small_study();
        // The ubiquitous HTTP ad stack must be in D' …
        for d in [
            "doubleclick.net",
            "google.com",
            "googlesyndication.com",
            "facebook.com",
        ] {
            assert!(study.aa.contains(d), "{d} missing from D'");
        }
        // … and several of the WebSocket-native vendors (at 900 sites not
        // every named vendor is sampled, but most are).
        let vendors = [
            "zopim.com",
            "intercom.io",
            "hotjar.com",
            "33across.com",
            "smartsupp.com",
            "disqus.com",
            "feedjit.com",
            "webspectator.com",
        ];
        let present = vendors.iter().filter(|d| study.aa.contains(d)).count();
        assert!(
            present >= 4,
            "only {present} of {} vendors labeled",
            vendors.len()
        );
        // … and publishers must not be.
        assert!(!study.aa.iter().any(|d| d.ends_with("-site-000001.example")));
        // Non-A&A realtime stays out.
        assert!(!study.aa.contains("espncdn.com"));
        assert!(!study.aa.contains("slither.io"));
    }

    #[test]
    fn cloudfront_reattribution_applies() {
        let study = small_study();
        assert_eq!(
            study.aa.aggregation_key("d10lpsik1i8c69.cloudfront.net"),
            "luckyorange.com"
        );
        // Raw cloudfront must not blanket-qualify.
        assert!(!study.aa.contains("cloudfront.net"));
    }

    #[test]
    fn majors_initiate_only_pre_patch() {
        let study = small_study();
        let initiators = |idx: usize| -> std::collections::BTreeSet<String> {
            study
                .classified(idx)
                .iter()
                .filter(|c| c.aa_initiated)
                .map(|c| c.initiator.clone())
                .collect()
        };
        let pre: std::collections::BTreeSet<_> =
            initiators(0).union(&initiators(1)).cloned().collect();
        let post: std::collections::BTreeSet<_> =
            initiators(2).union(&initiators(3)).cloned().collect();
        assert!(
            pre.len() > post.len(),
            "pre {} should exceed post {}",
            pre.len(),
            post.len()
        );
        assert!(!post.contains("doubleclick.net"));
        assert!(!post.contains("facebook.com"));
    }

    #[test]
    fn fused_reference_and_streaming_pipelines_agree() {
        let config = StudyConfig {
            n_sites: 120,
            threads: 4,
            ..StudyConfig::default()
        };
        let fused = Study::run(&config); // orchestrated default
        let static_shards = Study::run_static_shards(&config);
        let reference = Study::run_reference(&config);
        let streaming = Study::run_streaming(&config);
        assert_eq!(fused.reductions, static_shards.reductions);
        assert_eq!(fused.reductions, reference.reductions);
        assert_eq!(fused.reductions, streaming.reductions);
        // D' is a hash set, so iteration order tracks insertion order and the
        // pipelines insert in different orders; compare as sorted sets.
        let mut fused_aa: Vec<&str> = fused.aa.iter().collect();
        let mut reference_aa: Vec<&str> = reference.aa.iter().collect();
        let mut streaming_aa: Vec<&str> = streaming.aa.iter().collect();
        fused_aa.sort_unstable();
        reference_aa.sort_unstable();
        streaming_aa.sort_unstable();
        assert_eq!(fused_aa, reference_aa);
        assert_eq!(fused_aa, streaming_aa);
    }

    #[test]
    fn study_is_deterministic() {
        let a = Study::run(&StudyConfig {
            n_sites: 120,
            threads: 1,
            ..StudyConfig::default()
        });
        let b = Study::run(&StudyConfig {
            n_sites: 120,
            threads: 4,
            ..StudyConfig::default()
        });
        for (ra, rb) in a.reductions.iter().zip(&b.reductions) {
            assert_eq!(ra.sockets.len(), rb.sockets.len());
            for (sa, sb) in ra.sockets.iter().zip(&rb.sockets) {
                assert_eq!(sa.url, sb.url);
                assert_eq!(sa.sent_items, sb.sent_items);
            }
        }
    }
}
