//! HTTP/1.1 request serialization and parsing.

use crate::{Headers, HttpError};

/// Request methods the tracking stack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET — scripts, pixels, documents.
    Get,
    /// POST — beacon-style XHR uploads.
    Post,
    /// HEAD — occasionally used by availability probes.
    Head,
}

impl Method {
    /// Wire form.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    /// Parses the wire form.
    pub fn parse(s: &str) -> Result<Method, HttpError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "HEAD" => Ok(Method::Head),
            _ => Err(HttpError::BadStartLine),
        }
    }
}

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Request target (origin-form: path + optional query).
    pub target: String,
    /// Headers in wire order.
    pub headers: Headers,
    /// Body bytes (empty for GET/HEAD).
    pub body: Vec<u8>,
}

impl Request {
    /// A GET request for `target` on `host`.
    pub fn get(host: &str, target: &str) -> Request {
        let mut headers = Headers::new();
        headers.push("Host", host);
        Request {
            method: Method::Get,
            target: target.to_string(),
            headers,
            body: Vec::new(),
        }
    }

    /// A POST with a body (adds `Content-Length`).
    pub fn post(host: &str, target: &str, body: Vec<u8>) -> Request {
        let mut headers = Headers::new();
        headers.push("Host", host);
        headers.push("Content-Length", body.len().to_string());
        Request {
            method: Method::Post,
            target: target.to_string(),
            headers,
            body,
        }
    }

    /// Builder: adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Request {
        self.headers.push(name, value);
        self
    }

    /// Serializes to wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        self.headers.write_to(&mut out);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a complete request (headers must be terminated by CRLFCRLF;
    /// body length from `Content-Length`, defaulting to the remainder for
    /// requests without one).
    pub fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let head_end = find_head_end(bytes).ok_or(HttpError::Truncated)?;
        let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| HttpError::BadEncoding)?;
        let mut lines = head.splitn(2, "\r\n");
        let start = lines.next().ok_or(HttpError::BadStartLine)?;
        let rest = lines.next().unwrap_or("");
        let mut parts = start.split(' ');
        let method = Method::parse(parts.next().ok_or(HttpError::BadStartLine)?)?;
        let target = parts.next().ok_or(HttpError::BadStartLine)?.to_string();
        if parts.next() != Some("HTTP/1.1") {
            return Err(HttpError::BadStartLine);
        }
        let headers = Headers::parse_block(rest)?;
        let body_start = head_end + 4;
        let body = match headers.get("content-length") {
            Some(cl) => {
                let len: usize = cl.trim().parse().map_err(|_| HttpError::BadContentLength)?;
                let avail = bytes.len().saturating_sub(body_start);
                if avail < len {
                    return Err(HttpError::Truncated);
                }
                bytes[body_start..body_start + len].to_vec()
            }
            None => bytes.get(body_start..).unwrap_or_default().to_vec(),
        };
        Ok(Request {
            method,
            target,
            headers,
            body,
        })
    }
}

pub(crate) fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_roundtrip() {
        let req = Request::get("tracker.example", "/pixel0.gif?cookie=uid%3D1")
            .with_header("User-Agent", "Mozilla/5.0 Chrome/57")
            .with_header("Cookie", "uid=42; _ga=1.2");
        let bytes = req.to_bytes();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("GET /pixel0.gif?cookie=uid%3D1 HTTP/1.1\r\n"));
        assert!(text.contains("Cookie: uid=42; _ga=1.2\r\n"));
        let back = Request::parse(&bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn post_roundtrip_with_body() {
        let req = Request::post("c.example", "/collect", b"dom=<html></html>".to_vec());
        let back = Request::parse(&req.to_bytes()).unwrap();
        assert_eq!(back.method, Method::Post);
        assert_eq!(back.body, b"dom=<html></html>");
        assert_eq!(back.headers.get("content-length"), Some("17"));
    }

    #[test]
    fn rejects_bad_requests() {
        assert_eq!(Request::parse(b"GET /x"), Err(HttpError::Truncated));
        assert_eq!(
            Request::parse(b"BREW /pot HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
        assert_eq!(
            Request::parse(b"GET /x HTTP/1.0\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
        assert_eq!(
            Request::parse(b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::Truncated)
        );
    }

    #[test]
    fn websocket_upgrade_requests_parse() {
        // Cross-check with sockscope-wsproto's handshake grammar: an
        // upgrade request is a plain HTTP/1.1 GET.
        let raw = b"GET /socket HTTP/1.1\r\nHost: ws.zopim.com\r\nUpgrade: websocket\r\nConnection: Upgrade\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\nSec-WebSocket-Version: 13\r\n\r\n";
        let req = Request::parse(raw).unwrap();
        assert_eq!(req.headers.get("upgrade"), Some("websocket"));
        assert_eq!(req.target, "/socket");
    }
}
