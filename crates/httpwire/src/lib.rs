//! # sockscope-httpwire
//!
//! A minimal, dependency-free HTTP/1.1 wire codec: just enough of RFC 7230
//! to serialize the requests a 2017 tracking stack makes (GET with headers,
//! cookies, UA) and parse the responses it gets back (status line, headers,
//! `Content-Length` and `chunked` bodies).
//!
//! The simulated browser uses this so that *every* HTTP resource in the
//! study — tag scripts, tracking pixels, ad-config XHRs — is materialized
//! as real request/response bytes before the analyzer sees it, exactly as
//! the WebSocket side materializes RFC 6455 frames through
//! `sockscope-wsproto`. The WebSocket opening handshake is itself an
//! HTTP/1.1 upgrade, so `sockscope-wsproto::handshake` and this crate agree
//! on the grammar (and the tests cross-check them).
//!
//! Sans-IO like everything else: [`Request::to_bytes`]/[`Response::parse`]
//! plus an incremental [`ResponseParser`] for streamed input.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod request;
pub mod response;

pub use request::{Method, Request};
pub use response::{Response, ResponseParser};

/// Errors for both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Start line malformed.
    BadStartLine,
    /// A header line had no `:` separator or illegal bytes.
    BadHeader,
    /// `Content-Length` unparseable or conflicting.
    BadContentLength,
    /// A chunk size line was not valid hex.
    BadChunkSize,
    /// Input ended before the message was complete.
    Truncated,
    /// Body exceeded the configured cap.
    TooLarge,
    /// Header bytes were not valid UTF-8 (we only accept ASCII-ish).
    BadEncoding,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadStartLine => write!(f, "malformed start line"),
            HttpError::BadHeader => write!(f, "malformed header"),
            HttpError::BadContentLength => write!(f, "invalid Content-Length"),
            HttpError::BadChunkSize => write!(f, "invalid chunk size"),
            HttpError::Truncated => write!(f, "message truncated"),
            HttpError::TooLarge => write!(f, "body exceeds cap"),
            HttpError::BadEncoding => write!(f, "non-UTF-8 header block"),
        }
    }
}

impl std::error::Error for HttpError {}

/// An ordered, case-insensitive header map (headers keep insertion order,
/// lookups fold case — the behaviour the study's tooling needs when
/// fishing `Cookie`/`User-Agent` out of captured traffic).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, like the wire).
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value of `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name`.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.entries
            .iter()
            .filter(move |(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no headers present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, value)` pairs in wire order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    fn write_to(&self, out: &mut Vec<u8>) {
        for (n, v) in &self.entries {
            out.extend_from_slice(n.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
    }

    /// Parses a CRLF-separated header block (without the terminating blank
    /// line).
    pub fn parse_block(text: &str) -> Result<Headers, HttpError> {
        let mut headers = Headers::new();
        for line in text.split("\r\n") {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
            let name = name.trim();
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::BadHeader);
            }
            headers.push(name, value.trim());
        }
        Ok(headers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_lookup_is_case_insensitive() {
        let mut h = Headers::new();
        h.push("Content-Type", "text/html");
        h.push("X-Multi", "a");
        h.push("x-multi", "b");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        let all: Vec<&str> = h.get_all("X-Multi").collect();
        assert_eq!(all, vec!["a", "b"]);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn parse_block_rejects_garbage() {
        assert!(Headers::parse_block("NoColonHere").is_err());
        assert!(Headers::parse_block("Bad Name: x").is_err());
        let ok = Headers::parse_block("A: 1\r\nB: 2").unwrap();
        assert_eq!(ok.get("b"), Some("2"));
    }
}
