//! HTTP/1.1 response serialization and (incremental) parsing, including
//! chunked transfer encoding.

use crate::request::find_head_end;
use crate::{Headers, HttpError};

/// Default body cap (16 MiB), matching the WebSocket side.
pub const DEFAULT_MAX_BODY: usize = 16 * 1024 * 1024;

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers in wire order.
    pub headers: Headers,
    /// Decoded body (after de-chunking).
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response with a typed body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        let mut headers = Headers::new();
        headers.push("Content-Type", content_type);
        headers.push("Content-Length", body.len().to_string());
        Response {
            status: 200,
            reason: "OK".to_string(),
            headers,
            body,
        }
    }

    /// A bodyless response with the given status.
    pub fn status_only(status: u16, reason: &str) -> Response {
        let mut headers = Headers::new();
        headers.push("Content-Length", "0");
        Response {
            status,
            reason: reason.to_string(),
            headers,
            body: Vec::new(),
        }
    }

    /// Builder: adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push(name, value);
        self
    }

    /// Serializes with a `Content-Length` body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        self.headers.write_to(&mut out);
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes using chunked transfer encoding with the given chunk
    /// size (tracker CDNs in 2017 loved chunked responses; the parser has
    /// to handle them to classify bodies).
    pub fn to_chunked_bytes(&self, chunk_size: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(160 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (n, v) in self.headers.iter() {
            if n.eq_ignore_ascii_case("content-length") {
                continue;
            }
            out.extend_from_slice(format!("{n}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"Transfer-Encoding: chunked\r\n\r\n");
        let size = chunk_size.max(1);
        for chunk in self.body.chunks(size) {
            out.extend_from_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
            out.extend_from_slice(chunk);
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"0\r\n\r\n");
        out
    }

    /// Parses a complete response (either framing).
    pub fn parse(bytes: &[u8]) -> Result<Response, HttpError> {
        let mut parser = ResponseParser::new();
        parser.feed(bytes);
        parser.finish()?.ok_or(HttpError::Truncated)
    }
}

/// Incremental response parser: feed arbitrary byte chunks, poll for the
/// completed response.
#[derive(Debug, Clone)]
pub struct ResponseParser {
    buf: Vec<u8>,
    max_body: usize,
}

impl Default for ResponseParser {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseParser {
    /// New parser with the default body cap.
    pub fn new() -> ResponseParser {
        ResponseParser {
            buf: Vec::new(),
            max_body: DEFAULT_MAX_BODY,
        }
    }

    /// Appends transport bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Attempts to finish: `Ok(None)` = need more bytes.
    pub fn finish(&self) -> Result<Option<Response>, HttpError> {
        let bytes = &self.buf;
        let Some(head_end) = find_head_end(bytes) else {
            return Ok(None);
        };
        let head = std::str::from_utf8(&bytes[..head_end]).map_err(|_| HttpError::BadEncoding)?;
        let mut lines = head.splitn(2, "\r\n");
        let start = lines.next().ok_or(HttpError::BadStartLine)?;
        let rest = lines.next().unwrap_or("");
        let mut parts = start.splitn(3, ' ');
        let version = parts.next().ok_or(HttpError::BadStartLine)?;
        if version != "HTTP/1.1" && version != "HTTP/1.0" {
            return Err(HttpError::BadStartLine);
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(HttpError::BadStartLine)?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = Headers::parse_block(rest)?;
        let body_start = head_end + 4;

        let chunked = headers
            .get("transfer-encoding")
            .map(|v| v.to_ascii_lowercase().contains("chunked"))
            .unwrap_or(false);
        let body = if chunked {
            match decode_chunked(&bytes[body_start..], self.max_body)? {
                Some(b) => b,
                None => return Ok(None),
            }
        } else {
            match headers.get("content-length") {
                Some(cl) => {
                    let len: usize = cl.trim().parse().map_err(|_| HttpError::BadContentLength)?;
                    if len > self.max_body {
                        return Err(HttpError::TooLarge);
                    }
                    if bytes.len() < body_start + len {
                        return Ok(None);
                    }
                    bytes[body_start..body_start + len].to_vec()
                }
                // No length framing: everything fed so far is the body
                // (connection-close framing). finish() is the EOF signal.
                None => bytes.get(body_start..).unwrap_or_default().to_vec(),
            }
        };
        Ok(Some(Response {
            status,
            reason,
            headers,
            body,
        }))
    }
}

/// Decodes a chunked body; `Ok(None)` = incomplete.
fn decode_chunked(mut bytes: &[u8], max_body: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let mut out = Vec::new();
    loop {
        let Some(line_end) = bytes.windows(2).position(|w| w == b"\r\n") else {
            return Ok(None);
        };
        let size_line =
            std::str::from_utf8(&bytes[..line_end]).map_err(|_| HttpError::BadEncoding)?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16).map_err(|_| HttpError::BadChunkSize)?;
        if out.len() + size > max_body {
            return Err(HttpError::TooLarge);
        }
        let data_start = line_end + 2;
        if size == 0 {
            // Trailer: expect final CRLF (we ignore trailer headers).
            return if bytes.len() >= data_start + 2 {
                Ok(Some(out))
            } else {
                Ok(None)
            };
        }
        if bytes.len() < data_start + size + 2 {
            return Ok(None);
        }
        out.extend_from_slice(&bytes[data_start..data_start + size]);
        if &bytes[data_start + size..data_start + size + 2] != b"\r\n" {
            return Err(HttpError::BadChunkSize);
        }
        bytes = &bytes[data_start + size + 2..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_length_roundtrip() {
        let resp = Response::ok("application/javascript", b"(function(){})();".to_vec());
        let back = Response::parse(&resp.to_bytes()).unwrap();
        assert_eq!(back.status, 200);
        assert_eq!(back.body, b"(function(){})();");
        assert_eq!(
            back.headers.get("content-type"),
            Some("application/javascript")
        );
    }

    #[test]
    fn chunked_roundtrip_various_chunk_sizes() {
        let body: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let resp = Response::ok("application/octet-stream", body.clone());
        for chunk in [1usize, 7, 64, 499, 500, 1000] {
            let wire = resp.to_chunked_bytes(chunk);
            let back = Response::parse(&wire).unwrap();
            assert_eq!(back.body, body, "chunk size {chunk}");
            assert!(back
                .headers
                .get("transfer-encoding")
                .unwrap()
                .contains("chunked"));
        }
    }

    #[test]
    fn incremental_parsing_waits_for_body() {
        let resp = Response::ok("text/html", b"<html>hello</html>".to_vec());
        let wire = resp.to_bytes();
        let mut parser = ResponseParser::new();
        for (i, b) in wire.iter().enumerate() {
            parser.feed(std::slice::from_ref(b));
            let done = parser.finish().unwrap();
            if i + 1 < wire.len() {
                assert!(done.is_none(), "completed early at {i}");
            } else {
                assert_eq!(done.unwrap().body, b"<html>hello</html>");
            }
        }
    }

    #[test]
    fn status_only_and_404() {
        let resp = Response::status_only(404, "Not Found");
        let back = Response::parse(&resp.to_bytes()).unwrap();
        assert_eq!(back.status, 404);
        assert!(back.body.is_empty());
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(
            Response::parse(b"SPDY/3 200 OK\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
        assert_eq!(
            Response::parse(b"HTTP/1.1 2xx Nope\r\n\r\n"),
            Err(HttpError::BadStartLine)
        );
        assert_eq!(
            Response::parse(
                b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nZZ\r\nbody\r\n0\r\n\r\n"
            ),
            Err(HttpError::BadChunkSize)
        );
    }

    #[test]
    fn body_cap_enforced() {
        let mut parser = ResponseParser::new();
        parser.max_body = 10;
        parser.feed(b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\nhello world");
        assert_eq!(parser.finish(), Err(HttpError::TooLarge));
    }

    #[test]
    fn http10_responses_accepted() {
        // Some 2017 tracker CDNs still spoke 1.0 on pixel paths.
        let back = Response::parse(b"HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
        assert_eq!(back.body, b"ok");
    }
}
