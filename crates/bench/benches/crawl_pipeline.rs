//! Perf bench P4: end-to-end crawl rate — pages per second through the
//! full pipeline (page synthesis → browser → CDP events → inclusion tree).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sockscope_browser::{Browser, BrowserConfig, BrowserEra, ExtensionHost};
use sockscope_crawler::{crawl, crawl_site, CrawlConfig};
use sockscope_webgen::{SyntheticWeb, WebGenConfig};

fn bench_single_site(c: &mut Criterion) {
    let web = SyntheticWeb::new(WebGenConfig {
        n_sites: 200,
        ..WebGenConfig::default()
    });
    // Pick a site with WebSocket services so the bench exercises the codec.
    let site = web
        .sites()
        .iter()
        .find(|s| s.has_ws_service())
        .unwrap_or(&web.sites()[0]);
    let browser = Browser::new(
        &web,
        ExtensionHost::stock(BrowserEra::PreChrome58),
        BrowserConfig::default(),
    );
    let mut group = c.benchmark_group("crawl_pipeline");
    group.throughput(Throughput::Elements(16));
    group.bench_function("one_site_sixteen_pages", |b| {
        b.iter(|| crawl_site(&browser, &site.homepage(), &site.domain, 15, 42).len())
    });
    group.finish();
}

fn bench_small_crawl(c: &mut Criterion) {
    let web = SyntheticWeb::new(WebGenConfig {
        n_sites: 60,
        ..WebGenConfig::default()
    });
    let config = CrawlConfig {
        threads: 4,
        ..CrawlConfig::default()
    };
    let mut group = c.benchmark_group("crawl_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(60 * 16));
    group.bench_function("sixty_sites_parallel", |b| {
        b.iter(|| crawl(&web, &config).records.len())
    });
    group.finish();
}

criterion_group!(benches, bench_single_site, bench_small_crawl);
criterion_main!(benches);
