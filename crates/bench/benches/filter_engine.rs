//! Perf bench P2: filter-engine evaluation rate over the generated
//! EasyList/EasyPrivacy rules — the hot inner loop of both the labeling
//! pass and the ad-blocker ablation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sockscope_filterlist::{Engine, RequestContext, ResourceType};
use sockscope_urlkit::Url;
use sockscope_webgen::Catalog;

fn engine() -> Engine {
    let catalog = Catalog::build();
    let (engine, errs) = Engine::parse_many(&[
        &sockscope_webgen::lists::easylist(&catalog),
        &sockscope_webgen::lists::easyprivacy(&catalog),
    ]);
    assert!(errs.is_empty());
    engine
}

fn bench_engine(c: &mut Criterion) {
    let engine = engine();
    let page = Url::parse("http://news-site-000001.example/").unwrap();
    let urls: Vec<(Url, ResourceType)> = vec![
        // Hits.
        (
            Url::parse("https://stats.g.doubleclick.net/pixel0.gif?cookie=uid%3D1").unwrap(),
            ResourceType::Image,
        ),
        (
            Url::parse("https://v2.zopim.com/collect/beacon.gif").unwrap(),
            ResourceType::Image,
        ),
        (
            Url::parse("https://cdn.adnet00-media.com/adnet00.js?s=1&p=0").unwrap(),
            ResourceType::Script,
        ),
        // Misses.
        (
            Url::parse("http://www.news-site-000001.example/assets/app.js").unwrap(),
            ResourceType::Script,
        ),
        (
            Url::parse("https://a.espncdn.com/espncdn.js?s=1&p=0").unwrap(),
            ResourceType::Script,
        ),
        (
            Url::parse("wss://livescore-ws.espncdn.com/socket").unwrap(),
            ResourceType::WebSocket,
        ),
    ];
    let mut group = c.benchmark_group("filter_engine");
    group.throughput(Throughput::Elements(urls.len() as u64));
    group.bench_function("evaluate_mixed_six", |b| {
        b.iter(|| {
            let mut blocked = 0;
            for (url, rtype) in &urls {
                if engine.blocks(&RequestContext {
                    url,
                    page: &page,
                    resource_type: *rtype,
                }) {
                    blocked += 1;
                }
            }
            blocked
        })
    });
    group.finish();

    c.bench_function("filter_engine/parse_lists", |b| {
        let catalog = Catalog::build();
        let el = sockscope_webgen::lists::easylist(&catalog);
        let ep = sockscope_webgen::lists::easyprivacy(&catalog);
        b.iter(|| Engine::parse_many(&[&el, &ep]).0.len())
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
