//! Perf bench P6: the two matcher hot paths against their retained
//! reference engines, on a seeded corpus.
//!
//! * `pii_classify` — one-pass `RegexSet` classification vs the per-regex
//!   Pike-VM scan over the same 14-pattern library.
//! * `filter_decide` — token-indexed candidate evaluation vs the linear
//!   every-generic-rule scan over the generated EasyList/EasyPrivacy.
//!
//! Both pairs are decision-identical (enforced by differential tests);
//! these benches measure only the speed gap the indexes buy.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sockscope_analysis::PiiLibrary;
use sockscope_filterlist::{Engine, RequestContext, ResourceType};
use sockscope_urlkit::Url;
use sockscope_webgen::Catalog;
use sockscope_webmodel::{SentItem, ValueContext};

/// Deterministic message corpus: rendered tracking payloads (hits),
/// handshakes, and payload-free chatter (misses — the common case the
/// prefilters are for).
fn message_corpus() -> Vec<String> {
    let mut corpus = Vec::new();
    let subsets: &[&[SentItem]] = &[
        &[SentItem::UserAgent, SentItem::Cookie],
        &[SentItem::Screen, SentItem::Viewport, SentItem::Language],
        &[SentItem::UserId, SentItem::Ip, SentItem::FirstSeen],
        &[SentItem::Device, SentItem::Browser, SentItem::Orientation],
        &[SentItem::Resolution, SentItem::ScrollPosition],
    ];
    for (i, items) in subsets.iter().enumerate() {
        let ctx = ValueContext::deterministic(0xC0FFEE + i as u64);
        let payload = ctx.render_sent(items);
        corpus.push(String::from_utf8_lossy(payload.as_bytes()).into_owned());
    }
    corpus.push(
        "GET /socket HTTP/1.1\r\nHost: ws.zopim.com\r\nUser-Agent: Mozilla/5.0 (X11) \
         Chrome/57.0\r\nCookie: uid=42; _ga=GA1.2.3.4\r\n\r\n"
            .to_string(),
    );
    // Misses: realtime chatter with no tracking payload.
    for i in 0..64u32 {
        corpus.push(format!(
            "{{\"op\":\"tick\",\"seq\":{i},\"score\":[{},{}],\"msg\":\"goal by player {}\"}}",
            i * 7 % 13,
            i * 11 % 17,
            i % 23
        ));
        corpus.push(format!(
            "ping {i} keepalive session={:08x}",
            i * 0x9E3779B9u32
        ));
    }
    corpus
}

/// Deterministic request corpus over the generated lists: a hit-light,
/// miss-heavy mix like a real crawl's.
fn request_corpus() -> Vec<(Url, Url, ResourceType)> {
    let mut corpus = Vec::new();
    for site in 0..16u32 {
        let page = Url::parse(&format!("http://news-site-{site:06}.example/")).unwrap();
        for path in 0..4u32 {
            corpus.push((
                page.clone(),
                Url::parse(&format!(
                    "http://www.news-site-{site:06}.example/assets/app-{path}.js"
                ))
                .unwrap(),
                ResourceType::Script,
            ));
            corpus.push((
                page.clone(),
                Url::parse(&format!(
                    "http://img.news-site-{site:06}.example/photo-{path}.jpg?w=640&c={site}"
                ))
                .unwrap(),
                ResourceType::Image,
            ));
        }
        corpus.push((
            page.clone(),
            Url::parse("https://stats.g.doubleclick.net/pixel0.gif?cookie=uid%3D1").unwrap(),
            ResourceType::Image,
        ));
        corpus.push((
            page.clone(),
            Url::parse("https://v2.zopim.com/collect/beacon.gif").unwrap(),
            ResourceType::Image,
        ));
    }
    corpus
}

fn bench_pii_classify(c: &mut Criterion) {
    let lib = PiiLibrary::new();
    let corpus = message_corpus();
    // Warm the library's caches once so both paths race from steady state.
    for msg in &corpus {
        black_box(lib.classify_sent_text(msg));
        black_box(lib.classify_sent_text_reference(msg));
    }
    let mut group = c.benchmark_group("pii_classify");
    group.throughput(Throughput::Elements(corpus.len() as u64));
    group.bench_function("one_pass", |b| {
        b.iter(|| {
            let mut items = 0usize;
            for msg in &corpus {
                items += lib.classify_sent_text(msg).len();
            }
            items
        })
    });
    group.bench_function("per_regex", |b| {
        b.iter(|| {
            let mut items = 0usize;
            for msg in &corpus {
                items += lib.classify_sent_text_reference(msg).len();
            }
            items
        })
    });
    group.finish();
}

fn bench_filter_decide(c: &mut Criterion) {
    let catalog = Catalog::build();
    let (engine, errs) = Engine::parse_many(&[
        &sockscope_webgen::lists::easylist(&catalog),
        &sockscope_webgen::lists::easyprivacy(&catalog),
    ]);
    assert!(errs.is_empty());
    let corpus = request_corpus();
    let mut group = c.benchmark_group("filter_decide");
    group.throughput(Throughput::Elements(corpus.len() as u64));
    group.bench_function("tokenized", |b| {
        b.iter(|| {
            let mut blocked = 0usize;
            for (page, url, resource_type) in &corpus {
                let ctx = RequestContext {
                    url,
                    page,
                    resource_type: *resource_type,
                };
                blocked += engine.evaluate(&ctx).is_blocked() as usize;
            }
            blocked
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut blocked = 0usize;
            for (page, url, resource_type) in &corpus {
                let ctx = RequestContext {
                    url,
                    page,
                    resource_type: *resource_type,
                };
                blocked += engine.evaluate_reference(&ctx).is_blocked() as usize;
            }
            blocked
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pii_classify, bench_filter_decide);
criterion_main!(benches);
