//! Perf bench P5: locked streaming reduction vs sharded lock-free merge.
//!
//! Two views of the same contrast:
//!
//! * `reduce_records/*` — the reduction stage in isolation. Records are
//!   crawled once up front; the bench then replays them through (a) one
//!   shared `CrawlReduction` behind a mutex with classification inside the
//!   critical section — the pre-refactor hot path — and (b) per-shard
//!   private reductions folded with `CrawlReduction::merge` afterwards.
//! * `crawl_pipeline/*` — the full crawl+reduce pipeline end to end, via
//!   `crawl_streaming` and `crawl_sharded`.
//!
//! Knobs: `SOCKSCOPE_BENCH_SITES` (default 2000) and
//! `SOCKSCOPE_BENCH_THREADS` (default 4).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sockscope_analysis::pii::PiiLibrary;
use sockscope_analysis::reduce::CrawlReduction;
use sockscope_browser::ExtensionHost;
use sockscope_crawler::{browser_era, crawl_sharded, crawl_streaming, CrawlConfig, SiteRecord};
use sockscope_filterlist::Engine;
use sockscope_webgen::{Era, SyntheticWeb, WebGenConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Setup {
    web: SyntheticWeb,
    engine: Engine,
    era: Era,
    config: CrawlConfig,
    shards: usize,
}

fn setup() -> Setup {
    let web = SyntheticWeb::new(WebGenConfig {
        n_sites: env_usize("SOCKSCOPE_BENCH_SITES", 2_000),
        ..WebGenConfig::default()
    });
    let (engine, errs) = Engine::parse_many(&[&web.easylist(), &web.easyprivacy()]);
    assert!(errs.is_empty(), "generated lists must parse");
    let era = web.config().era.clone();
    let threads = env_usize("SOCKSCOPE_BENCH_THREADS", 4);
    Setup {
        web,
        engine,
        era,
        config: CrawlConfig {
            threads,
            ..CrawlConfig::default()
        },
        shards: threads * 4,
    }
}

/// The pre-refactor reduction: workers pull records by index and fold them
/// into one shared reduction, classifying *inside* the critical section.
fn reduce_locked(s: &Setup, records: &[SiteRecord]) -> CrawlReduction {
    let lib = PiiLibrary::new();
    let reduction = Mutex::new(CrawlReduction::new(s.era.label(), s.era.pre_patch()));
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..s.config.threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(record) = records.get(i) else { break };
                reduction
                    .lock()
                    .expect("reduction lock")
                    .observe_site(record, &s.engine, &lib);
            });
        }
    });
    let mut reduction = reduction.into_inner().expect("reduction lock");
    reduction.normalize();
    reduction
}

/// The sharded reduction: each worker folds its interleaved shard into a
/// private reduction with a private classification context; shards merge
/// in shard order afterwards.
fn reduce_sharded(s: &Setup, records: &[SiteRecord]) -> CrawlReduction {
    let next_shard = AtomicUsize::new(0);
    let mut out: Vec<Option<CrawlReduction>> = (0..s.shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..s.config.threads)
            .map(|_| {
                scope.spawn(|| {
                    let lib = PiiLibrary::new();
                    let mut finished = Vec::new();
                    loop {
                        let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                        if shard >= s.shards {
                            break;
                        }
                        let mut acc = CrawlReduction::new(s.era.label(), s.era.pre_patch());
                        let mut i = shard;
                        while i < records.len() {
                            acc.observe_site(&records[i], &s.engine, &lib);
                            i += s.shards;
                        }
                        finished.push((shard, acc));
                    }
                    finished
                })
            })
            .collect();
        for worker in workers {
            for (shard, acc) in worker.join().expect("bench worker") {
                out[shard] = Some(acc);
            }
        }
    });
    let mut reduction = out.into_iter().map(|a| a.expect("shard reduced")).fold(
        CrawlReduction::new(s.era.label(), s.era.pre_patch()),
        CrawlReduction::merge,
    );
    reduction.normalize();
    reduction
}

/// The locked-vs-sharded contrast is a *parallelism* contrast: with one CPU
/// core the mutex is never contended and the shards run back to back, so the
/// two reducers tie by construction. Say so up front rather than letting a
/// single-core tie read as a regression.
fn report_parallelism() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    if cores < 2 {
        println!(
            "note: single-core host; locked and sharded are expected to tie here. \
             The sharded speedup (>=1.5x at 4+ threads) needs a multi-core host."
        );
    }
}

fn bench_reduce_records(c: &mut Criterion) {
    report_parallelism();
    let s = setup();
    let dataset = sockscope_crawler::crawl(&s.web, &s.config);
    let records = dataset.records;
    assert_eq!(
        reduce_locked(&s, &records),
        reduce_sharded(&s, &records),
        "both reducers must agree before their times mean anything"
    );

    let mut group = c.benchmark_group("reduce_records");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.sample_size(10);
    group.bench_function("locked_streaming", |b| {
        b.iter(|| reduce_locked(&s, &records).sockets.len())
    });
    group.bench_function("sharded", |b| {
        b.iter(|| reduce_sharded(&s, &records).sockets.len())
    });
    group.finish();
}

fn bench_crawl_pipeline(c: &mut Criterion) {
    let s = setup();
    let make_extensions = || ExtensionHost::stock(browser_era(&s.era));

    let mut group = c.benchmark_group("crawl_pipeline");
    group.throughput(Throughput::Elements(s.web.sites().len() as u64));
    group.sample_size(10);
    group.bench_function("locked_streaming", |b| {
        b.iter(|| {
            let lib = PiiLibrary::new();
            let reduction = Mutex::new(CrawlReduction::new(s.era.label(), s.era.pre_patch()));
            crawl_streaming(&s.web, &s.config, &make_extensions, &|record| {
                reduction
                    .lock()
                    .expect("reduction lock")
                    .observe_site(&record, &s.engine, &lib);
            });
            let mut reduction = reduction.into_inner().expect("reduction lock");
            reduction.normalize();
            reduction.sockets.len()
        })
    });
    group.bench_function("sharded", |b| {
        b.iter(|| {
            let mut reduction = crawl_sharded(
                &s.web,
                &s.config,
                s.shards,
                &make_extensions,
                &|_shard| {
                    (
                        CrawlReduction::new(s.era.label(), s.era.pre_patch()),
                        PiiLibrary::new(),
                    )
                },
                &|acc: &mut (CrawlReduction, PiiLibrary), record| {
                    acc.0.observe_site(&record, &s.engine, &acc.1);
                },
            )
            .into_iter()
            .map(|(reduction, _lib)| reduction)
            .fold(
                CrawlReduction::new(s.era.label(), s.era.pre_patch()),
                CrawlReduction::merge,
            );
            reduction.normalize();
            reduction.sockets.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reduce_records, bench_crawl_pipeline);
criterion_main!(benches);
