//! Perf bench P1: RFC 6455 codec throughput.
//!
//! Not a paper artifact, but the substrate every experiment rides on: frame
//! encode/decode rates for the payload sizes the study actually observed
//! (cookie beacons ~100 B, fingerprint bundles ~400 B, DOM exfiltration
//! ~64 KiB), plus handshake computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sockscope_wsproto::codec::{FrameDecoder, FrameEncoder, MaskingRole};
use sockscope_wsproto::handshake::{accept_key, ClientHandshake, ServerHandshake};
use sockscope_wsproto::{Connection, Frame, Role};

fn bench_frame_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_roundtrip");
    for &size in &[100usize, 400, 4096, 65536] {
        let payload = vec![0x5Au8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &payload, |b, payload| {
            let mut enc = FrameEncoder::new(MaskingRole::Client, 7);
            let mut dec = FrameDecoder::new(MaskingRole::Server);
            b.iter(|| {
                let bytes = enc.encode(&Frame::binary(payload.clone()));
                dec.feed(&bytes);
                dec.next_frame().unwrap().unwrap().payload.len()
            });
        });
    }
    group.finish();
}

fn bench_handshake(c: &mut Criterion) {
    c.bench_function("handshake_accept_key", |b| {
        b.iter(|| accept_key(std::hint::black_box("dGhlIHNhbXBsZSBub25jZQ==")))
    });
    c.bench_function("handshake_full", |b| {
        b.iter(|| {
            let client = ClientHandshake::new("adnet.example", "/data.ws", 7)
                .origin("http://pub.example")
                .user_agent("Mozilla/5.0 Chrome/57.0");
            let req = client.request_bytes();
            let server = ServerHandshake::accept_request(&req).unwrap();
            let resp = server.response_bytes(None);
            client.validate_response(&resp).unwrap()
        })
    });
}

fn bench_connection_session(c: &mut Criterion) {
    c.bench_function("connection_session_10_messages", |b| {
        b.iter(|| {
            let mut client = Connection::new(Role::Client, 3);
            let mut server = Connection::new(Role::Server, 5);
            for i in 0..10 {
                client
                    .send_text(&format!("cookie=uid{i}; screen=1920x1080"))
                    .unwrap();
            }
            let (_, events) =
                sockscope_wsproto::connection::pump(&mut client, &mut server).unwrap();
            events.len()
        })
    });
}

criterion_group!(
    benches,
    bench_frame_roundtrip,
    bench_handshake,
    bench_connection_session
);
criterion_main!(benches);
