//! Perf bench P3: inclusion-tree construction rate from CDP event streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sockscope_browser::{
    CdpEvent, FrameId, FramePayload, Initiator, RequestId, ResourceKind, ScriptId,
};
use sockscope_inclusion::InclusionTree;

/// Builds a synthetic event stream: `chains` scripts each including a
/// sub-script, an image, and a WebSocket with a couple of frames.
fn event_stream(chains: u64) -> Vec<CdpEvent<'static>> {
    let mut events = Vec::new();
    let mut rid = 0u64;
    for i in 0..chains {
        let parent = ScriptId(i * 2 + 1);
        let child = ScriptId(i * 2 + 2);
        events.push(CdpEvent::ScriptParsed {
            script_id: parent,
            url: format!("http://tag-{i}.example/tag.js").into(),
            frame_id: FrameId(0),
            initiator: Initiator::Parser(FrameId(0)),
        });
        events.push(CdpEvent::ScriptParsed {
            script_id: child,
            url: format!("http://tag-{i}.example/inner.js").into(),
            frame_id: FrameId(0),
            initiator: Initiator::Script(parent),
        });
        rid += 1;
        events.push(CdpEvent::RequestWillBeSent {
            request_id: RequestId(rid),
            url: format!("http://tag-{i}.example/pixel0.gif?cookie=uid%3D{i}").into(),
            resource_type: ResourceKind::Image,
            initiator: Initiator::Script(child),
            frame_id: FrameId(0),
        });
        rid += 1;
        events.push(CdpEvent::WebSocketCreated {
            request_id: RequestId(rid),
            url: format!("wss://rt-{i}.example/socket").into(),
            initiator: Initiator::Script(child),
            frame_id: FrameId(0),
        });
        events.push(CdpEvent::WebSocketFrameSent {
            request_id: RequestId(rid),
            payload: FramePayload::Text(format!("cookie=uid={i}&screen=1920x1080").into()),
        });
        events.push(CdpEvent::WebSocketFrameReceived {
            request_id: RequestId(rid),
            payload: FramePayload::Text("{\"ok\":true}".into()),
        });
        events.push(CdpEvent::WebSocketClosed {
            request_id: RequestId(rid),
        });
    }
    events
}

fn bench_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("inclusion_tree_build");
    for &chains in &[10u64, 100, 1000] {
        let events = event_stream(chains);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(chains), &events, |b, events| {
            b.iter(|| {
                let tree = InclusionTree::build("http://pub.example/", events);
                tree.len()
            })
        });
    }
    group.finish();
}

fn bench_chain_walk(c: &mut Criterion) {
    let events = event_stream(1000);
    let tree = InclusionTree::build("http://pub.example/", &events);
    c.bench_function("inclusion_tree/chain_walk_all_sockets", |b| {
        b.iter(|| {
            tree.websockets()
                .map(|s| tree.chain(s.id).len())
                .sum::<usize>()
        })
    });
}

criterion_group!(benches, bench_tree_build, bench_chain_walk);
criterion_main!(benches);
