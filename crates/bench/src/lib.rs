//! Shared plumbing for the benchmark/reproduction harness.
//!
//! Every `--bin` in this crate regenerates one table or figure of the
//! paper. Scale knobs come from the environment so the same binaries serve
//! quick smoke runs and paper-scale reproductions:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `SOCKSCOPE_SITES` | 8000 | publisher universe size (paper: ~100K) |
//! | `SOCKSCOPE_THREADS` | all cores | crawl parallelism |
//! | `SOCKSCOPE_SEED` | 0x50C25C0F | universe seed |
//! | `SOCKSCOPE_WORKERS` | `SOCKSCOPE_THREADS` | orchestrator crawl workers |
//! | `SOCKSCOPE_QUEUE_DEPTH` | 64 | orchestrator hand-off queue capacity |
//! | `SOCKSCOPE_STATIC` | unset | `1` = static shard-per-thread driver |
//! | `SOCKSCOPE_ERAS` | unset | N-era synthetic timeline instead of the paper's 4 crawls |

#![forbid(unsafe_code)]

use sockscope::{EraTimeline, StudyConfig};

/// Reads the scale knobs from the environment.
pub fn study_config_from_env() -> StudyConfig {
    let mut config = StudyConfig::default();
    if let Ok(v) = std::env::var("SOCKSCOPE_SITES") {
        if let Ok(n) = v.parse() {
            config.n_sites = n;
        }
    } else {
        config.n_sites = 8_000;
    }
    if let Ok(v) = std::env::var("SOCKSCOPE_THREADS") {
        if let Ok(n) = v.parse() {
            config.threads = n;
        }
    }
    if let Ok(v) = std::env::var("SOCKSCOPE_SEED") {
        if let Ok(n) = u64::from_str_radix(v.trim_start_matches("0x"), 16) {
            config.seed = n;
        }
    }
    if let Ok(v) = std::env::var("SOCKSCOPE_WORKERS") {
        if let Ok(n) = v.parse::<usize>() {
            config.workers = Some(n.max(1));
        }
    }
    if let Ok(v) = std::env::var("SOCKSCOPE_QUEUE_DEPTH") {
        if let Ok(n) = v.parse::<usize>() {
            config.queue_depth = n.max(1);
        }
    }
    if std::env::var("SOCKSCOPE_STATIC").as_deref() == Ok("1") {
        config.orchestrated = false;
    }
    // After --seed so the synthetic timeline derives from the final seed,
    // matching the CLI's `--eras` behaviour.
    if let Ok(v) = std::env::var("SOCKSCOPE_ERAS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                config.timeline = EraTimeline::synthetic(n, config.seed ^ 0x0E5A_51DE, n / 2);
            }
        }
    }
    config
}

/// Runs the study once with an announcement banner.
pub fn run_study_announced(what: &str) -> sockscope::report::StudyReport {
    let config = study_config_from_env();
    eprintln!(
        "[sockscope] regenerating {what}: {} sites x {} crawls, {} threads, seed {:#x}",
        config.n_sites,
        config.timeline.len(),
        config.threads,
        config.seed
    );
    let t = std::time::Instant::now();
    let report = sockscope::StudyReport::run(&config);
    eprintln!(
        "[sockscope] study completed in {:.1}s",
        t.elapsed().as_secs_f64()
    );
    report
}
