//! Runs the whole study once and prints every table, figure, and statistic.
fn main() {
    let report = sockscope_bench::run_study_announced("full report");
    println!("{}", report.render());
}
