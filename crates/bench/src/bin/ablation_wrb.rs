//! Ablation A1: the webRequest Bug with an ad blocker **in the loop**.
//!
//! The paper measures what companies did; this ablation shows what the bug
//! *enabled*, by crawling the identical pre-patch web three ways:
//!
//! 1. pre-Chrome-58 browser + blocker — the WRB is live: WebSocket requests
//!    never reach `onBeforeRequest`;
//! 2. post-Chrome-58 browser + the same blocker — the patch lets the
//!    blocker see (and cancel) sockets;
//! 3. post-Chrome-58 browser + a blocker that kept `http://*`-only URL
//!    filters — Franken et al.'s extension-side mistake: patched browser,
//!    still no socket blocking;
//! 4. pre-Chrome-58 browser + blocker + a uBO-Extra-style `WebSocket`
//!    constructor shim — the mitigation blockers actually shipped during
//!    the WRB years: most sockets become blockable again, but iframe
//!    sockets still escape the page-world wrapper.
//!
//! Company behaviour is held fixed (the pre-patch web), so any difference
//! is the interposition mechanics alone.

use sockscope::browser::{AdBlockerExtension, BrowserEra, ExtensionHost};
use sockscope::crawler::{crawl_with_extensions, CrawlConfig};
use sockscope::filterlist::Engine;
use sockscope::inclusion::NodeKind;
use sockscope::webgen::{SyntheticWeb, WebGenConfig};

struct Outcome {
    sockets_opened: usize,
    sockets_blocked: usize,
    http_blocked: usize,
}

fn run(
    web: &SyntheticWeb,
    era: BrowserEra,
    legacy_filters: bool,
    shim: bool,
    threads: usize,
) -> Outcome {
    // The blocker gets extra socket-aware rules for the A&A endpoints —
    // the uBO-mitigation-era configuration.
    let mut list = web.easylist();
    list.push_str(&web.easyprivacy());
    for company in web.catalog().all().iter().filter(|c| c.aa_listed) {
        list.push_str(&format!("||{}^$websocket\n", company.domain));
        // Cloudfront-hosted endpoints need host rules.
        if company.ws_host.contains("cloudfront") {
            list.push_str(&format!("||{}^$websocket\n", company.ws_host));
        }
    }
    let config = CrawlConfig {
        threads,
        ..CrawlConfig::default()
    };
    let dataset = crawl_with_extensions(web, &config, &|| {
        let (engine, _) = Engine::parse(&list);
        let mut blocker = AdBlockerExtension::new("abp", engine);
        if legacy_filters {
            blocker = blocker.with_legacy_filters();
        }
        let mut host = ExtensionHost::stock(era).install(blocker);
        if shim {
            host = host.with_ws_shim();
        }
        host
    });
    let mut outcome = Outcome {
        sockets_opened: 0,
        sockets_blocked: 0,
        http_blocked: 0,
    };
    for tree in dataset.trees() {
        for node in tree.nodes() {
            match node.kind {
                NodeKind::WebSocket => outcome.sockets_opened += 1,
                NodeKind::Blocked => {
                    if node.url.starts_with("ws://") || node.url.starts_with("wss://") {
                        outcome.sockets_blocked += 1;
                    } else {
                        outcome.http_blocked += 1;
                    }
                }
                _ => {}
            }
        }
    }
    outcome
}

fn main() {
    let n_sites: usize = std::env::var("SOCKSCOPE_SITES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000);
    let threads = std::env::var("SOCKSCOPE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    eprintln!("[sockscope] WRB ablation: {n_sites} sites, {threads} threads");
    // Fixed pre-patch web: DoubleClick & friends are still opening sockets.
    let web = SyntheticWeb::new(WebGenConfig {
        n_sites,
        ..WebGenConfig::default()
    });

    let wrb = run(&web, BrowserEra::PreChrome58, false, false, threads);
    let patched = run(&web, BrowserEra::PostChrome58, false, false, threads);
    let legacy = run(&web, BrowserEra::PostChrome58, true, false, threads);
    let shimmed = run(&web, BrowserEra::PreChrome58, false, true, threads);

    println!("WRB ablation (identical pre-patch web, ad blocker installed)\n");
    println!(
        "{:<46} {:>10} {:>12} {:>12}",
        "configuration", "WS opened", "WS blocked", "HTTP blocked"
    );
    println!(
        "{:<46} {:>10} {:>12} {:>12}",
        "Chrome <58 (WRB live)", wrb.sockets_opened, wrb.sockets_blocked, wrb.http_blocked
    );
    println!(
        "{:<46} {:>10} {:>12} {:>12}",
        "Chrome 58+ (patched)",
        patched.sockets_opened,
        patched.sockets_blocked,
        patched.http_blocked
    );
    println!(
        "{:<46} {:>10} {:>12} {:>12}",
        "Chrome 58+ but http://*-only extension filters",
        legacy.sockets_opened,
        legacy.sockets_blocked,
        legacy.http_blocked
    );
    println!(
        "{:<46} {:>10} {:>12} {:>12}",
        "Chrome <58 + uBO-Extra-style constructor shim",
        shimmed.sockets_opened,
        shimmed.sockets_blocked,
        shimmed.http_blocked
    );
    println!();
    println!(
        "WRB effect: {} sockets slipped past the blocker that the patched \
         browser intercepts ({} -> {}).",
        wrb.sockets_opened.saturating_sub(patched.sockets_opened),
        wrb.sockets_opened,
        patched.sockets_opened
    );
    assert!(wrb.sockets_blocked == 0, "pre-58 must never block a socket");
    assert!(
        patched.sockets_blocked > 0,
        "patched browser must block A&A sockets"
    );
    assert!(
        legacy.sockets_blocked == 0,
        "legacy filters must not block sockets even when patched"
    );
    // The shim recovers most — but not all — of the patched behaviour.
    assert!(
        shimmed.sockets_blocked > 0,
        "shim must block main-frame sockets"
    );
    assert!(
        shimmed.sockets_opened >= patched.sockets_opened,
        "shim cannot beat the real patch"
    );
    println!(
        "uBO-Extra-style shim recovers {} of the {} sockets the patch blocks; \
         the remainder open inside ad iframes, beyond the page-world wrapper.",
        shimmed.sockets_blocked, patched.sockets_blocked
    );
    assert!(
        shimmed.sockets_opened > patched.sockets_opened,
        "iframe sockets must escape the shim"
    );
}
