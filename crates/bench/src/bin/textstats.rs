//! Regenerates the §4.1–§4.3 prose statistics.
fn main() {
    let report = sockscope_bench::run_study_announced("text statistics");
    println!("{}", report.textstats.render());
}
