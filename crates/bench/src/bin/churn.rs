//! Extension analysis: the crawl-over-crawl presence matrix generalizing
//! §4.1's "56 initiators disappeared" note.
fn main() {
    let report = sockscope_bench::run_study_announced("churn matrix");
    println!("{}", report.churn.render(40));
}
