//! Regenerates **Table 5**: items sent/received over A&A sockets vs HTTP/S.
fn main() {
    let report = sockscope_bench::run_study_announced("Table 5");
    println!("{}", report.table5.render());
}
