//! Renders **Figure 1**: the webRequest Bug timeline.
fn main() {
    println!("{}", sockscope::timeline::render_timeline());
}
