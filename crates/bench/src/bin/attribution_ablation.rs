//! Ablation A4: inclusion trees vs `Referer`-based attribution.
//!
//! §3.1 argues that HTTP-Referer-based attribution is misleading because
//! "the Referer header is set to the first-party domain, even if the
//! resource making the request originated from a third-party", and builds
//! inclusion trees instead. This ablation quantifies what the cheaper
//! method would have cost: for every WebSocket in a crawl, compare
//!
//! * **inclusion attribution** — the nearest ancestor script's domain
//!   (what the paper reports in Tables 2 and 4), against
//! * **Referer attribution** — the page's own domain (what the Referer
//!   header of the handshake carries).
//!
//! Sockets opened by genuinely first-party code agree under both; every
//! third-party-script socket is misattributed to the publisher under
//! Referer semantics — and with it, the entire A&A-initiator analysis
//! (Table 1's columns 3–4) collapses.

use sockscope::{Study, StudyConfig};

fn main() {
    let n_sites: usize = std::env::var("SOCKSCOPE_SITES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    eprintln!("[sockscope] attribution ablation: {n_sites} sites x 4 crawls");
    let study = Study::run(&StudyConfig {
        n_sites,
        ..StudyConfig::default()
    });

    let mut total = 0usize;
    let mut misattributed = 0usize;
    let mut aa_lost = 0usize; // A&A-initiated sockets that Referer calls first-party
    let mut referer_unique_initiators = std::collections::BTreeSet::new();
    let mut inclusion_unique_initiators = std::collections::BTreeSet::new();

    for idx in 0..study.crawl_count() {
        for c in study.classified(idx) {
            total += 1;
            let referer_initiator = study
                .aa
                .aggregation_key(&format!("www.{}", c.obs.site_domain));
            inclusion_unique_initiators.insert(c.initiator.clone());
            referer_unique_initiators.insert(referer_initiator.clone());
            if c.initiator != referer_initiator {
                misattributed += 1;
                if c.aa_initiated {
                    aa_lost += 1;
                }
            }
        }
    }

    let pct = |n: usize| n as f64 / total.max(1) as f64 * 100.0;
    println!("Attribution ablation: inclusion trees vs Referer (§3.1)\n");
    println!("sockets observed:                          {total}");
    println!(
        "misattributed under Referer semantics:     {misattributed} ({:.1}%)",
        pct(misattributed)
    );
    println!(
        "A&A-initiated sockets relabeled first-party: {aa_lost} ({:.1}%)",
        pct(aa_lost)
    );
    println!(
        "unique initiator domains — inclusion: {}   Referer: {} (all publishers)",
        inclusion_unique_initiators.len(),
        referer_unique_initiators.len()
    );
    println!();
    println!("Under Referer attribution every third-party-script socket is");
    println!("credited to the publisher: the A&A-initiator columns of Table 1");
    println!("would read ~0%, and Tables 2/4 would list only publisher domains.");
    println!("This is exactly why the methodology builds inclusion trees.");

    assert!(
        pct(misattributed) > 30.0,
        "third-party scripts should dominate socket initiation"
    );
    assert!(aa_lost > 0, "A&A attributions must be lost under Referer");
}
