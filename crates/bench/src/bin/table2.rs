//! Regenerates **Table 2**: top-15 WebSocket initiators by unique receivers.
fn main() {
    let report = sockscope_bench::run_study_announced("Table 2");
    println!("{}", report.table2.render());
    println!("(paper's top initiators: facebook 35/11, espncdn 35/0, h-cdn 30/0, doubleclick 29/9, slither 25/0, google 23/11, youtube 18/8, ...)");
}
