//! Regenerates **Figure 3**: WebSocket usage by Alexa site rank.
fn main() {
    let report = sockscope_bench::run_study_announced("Figure 3");
    println!("{}", report.figure3.render());
}
