//! End-to-end pipeline perf harness → `BENCH_pipeline.json`.
//!
//! Runs the study pipeline stage by stage — universe generation, filter
//! parsing, the four crawls, payload classification, reduction/labeling —
//! timing each separately, then races the two matcher hot paths against
//! their retained reference engines on a corpus extracted from the crawl
//! itself:
//!
//! * **classify** — one-pass `RegexSet` PII classification vs the
//!   per-regex Pike-VM scan ([`PiiLibrary::classify_sent_text_reference`]);
//! * **decide** — token-indexed filter evaluation vs the linear
//!   every-generic-rule scan ([`Engine::evaluate_reference`]).
//!
//! The result (wall times, messages/sec, URLs/sec, lazy-DFA cache counters,
//! token-index coverage) is written to `BENCH_pipeline.json`. Scale comes
//! from the usual `SOCKSCOPE_*` knobs.
//!
//! `perf --check [path]` re-reads a written report and validates the
//! schema: every key present, every timing positive, both speedups finite.
//! CI's perf-smoke job runs the harness at `SOCKSCOPE_SITES=2000` and then
//! `--check`s the artifact it uploads.

use serde::{Deserialize, Serialize};
use sockscope_analysis::{CrawlReduction, PiiLibrary, Study};
use sockscope_crawler::SiteRecord;
use sockscope_filterlist::{RequestContext, ResourceType};
use sockscope_inclusion::NodeKind;
use sockscope_urlkit::Url;
use sockscope_webgen::CrawlEra;
use std::time::Instant;

/// Matcher-corpus cap: keeps the before/after race bounded at paper scale.
/// Corpus sizes are recorded in the report, so a capped run is visible.
const MAX_CORPUS: usize = 250_000;

const SCHEMA: &str = "sockscope-bench-pipeline/1";
const DEFAULT_PATH: &str = "BENCH_pipeline.json";

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    sites: usize,
    threads: usize,
    seed_hex: String,
    stages: Stages,
    throughput: Throughput,
    matchers: Matchers,
}

/// Wall time of each pipeline stage, in seconds.
#[derive(Debug, Serialize, Deserialize)]
struct Stages {
    universe_s: f64,
    filters_s: f64,
    crawl_s: f64,
    classification_s: f64,
    reduction_s: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Throughput {
    /// Classified payload messages per second (one-pass path).
    messages_per_s: f64,
    /// Filter decisions per second (token-indexed path).
    urls_per_s: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Matchers {
    classify: Classify,
    decide: Decide,
    dfa: DfaCounters,
    filter_index: IndexCounters,
}

#[derive(Debug, Serialize, Deserialize)]
struct Classify {
    /// Corpus size (handshakes + text frames + query-bearing URLs).
    messages: usize,
    one_pass_s: f64,
    per_regex_s: f64,
    /// `per_regex_s / one_pass_s`.
    speedup: f64,
    /// Total items found (must agree across both paths).
    items: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Decide {
    /// Corpus size (HTTP resource requests from the crawl).
    urls: usize,
    tokenized_s: f64,
    linear_s: f64,
    /// `linear_s / tokenized_s`.
    speedup: f64,
    /// Blocked requests (must agree across both paths).
    blocked: u64,
}

/// [`sockscope_redlite::DfaStats`], flattened for the report.
#[derive(Debug, Serialize, Deserialize)]
struct DfaCounters {
    states: u64,
    classes: u64,
    trans_computed: u64,
    trans_cached: u64,
    scans: u64,
    fallbacks: u64,
}

/// [`sockscope_filterlist::IndexStats`], flattened for the report.
#[derive(Debug, Serialize, Deserialize)]
struct IndexCounters {
    rules: u64,
    domain_indexed: u64,
    tokenized: u64,
    untokenized: u64,
}

/// The matcher corpus harvested from crawl records.
#[derive(Default)]
struct Corpus {
    /// Texts the reduction feeds to `classify_sent_text`.
    messages: Vec<String>,
    /// `(page_url, request_url, resource_type)` filter-decision inputs.
    requests: Vec<(String, String, ResourceType)>,
}

impl Corpus {
    fn harvest(&mut self, record: &SiteRecord) {
        for tree in &record.trees {
            for node in tree.nodes() {
                match node.kind {
                    NodeKind::Script | NodeKind::Image | NodeKind::Xhr => {
                        if self.requests.len() < MAX_CORPUS {
                            let rtype = match node.kind {
                                NodeKind::Script => ResourceType::Script,
                                NodeKind::Image => ResourceType::Image,
                                _ => ResourceType::Xhr,
                            };
                            self.requests
                                .push((tree.page_url.clone(), node.url.clone(), rtype));
                        }
                        if node.url.contains('=') && self.messages.len() < MAX_CORPUS {
                            self.messages.push(node.url.clone());
                        }
                    }
                    NodeKind::WebSocket => {
                        let Some(ws) = &node.ws else { continue };
                        if self.messages.len() < MAX_CORPUS {
                            self.messages.push(ws.handshake_request.clone());
                        }
                        for frame in &ws.sent {
                            if let Some(t) = frame.as_text() {
                                if !t.is_empty() && self.messages.len() < MAX_CORPUS {
                                    self.messages.push(t.to_string());
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--check") => {
            let path = args.get(2).map(String::as_str).unwrap_or(DEFAULT_PATH);
            check(path);
        }
        Some(other) => {
            eprintln!("unknown argument {other:?}; usage: perf [--check [path]]");
            std::process::exit(2);
        }
        None => run(),
    }
}

fn run() {
    let config = sockscope_bench::study_config_from_env();
    eprintln!(
        "[sockscope] perf harness: {} sites x 4 crawls, {} threads, seed {:#x}",
        config.n_sites, config.threads, config.seed
    );

    let t = Instant::now();
    let web = Study::universe(&config);
    let universe_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let engine = Study::engine_for(&web);
    let filters_s = t.elapsed().as_secs_f64();

    let crawl_config = Study::crawl_config(&config);
    let shards = config.threads.max(1) * 4;
    let mut corpus = Corpus::default();
    let mut reductions = Vec::new();
    let mut crawl_s = 0.0;
    let mut reduction_s = 0.0;
    let lib = PiiLibrary::new();
    for era in CrawlEra::ALL {
        let era_web = web.for_era(era);
        let make_extensions =
            || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(era));

        // Crawl stage: produce the site records, nothing else.
        let t = Instant::now();
        let shard_records: Vec<Vec<SiteRecord>> = sockscope_crawler::crawl_sharded(
            &era_web,
            &crawl_config,
            shards,
            &make_extensions,
            &|_shard| Vec::new(),
            &|acc: &mut Vec<SiteRecord>, record| acc.push(record),
        );
        crawl_s += t.elapsed().as_secs_f64();

        for record in shard_records.iter().flatten() {
            corpus.harvest(record);
        }

        // Reduction stage: classify + reduce the records just produced.
        let t = Instant::now();
        let mut reduction = CrawlReduction::new(era.label(), era.pre_patch());
        for record in shard_records.iter().flatten() {
            reduction.observe_site(record, &engine, &lib);
        }
        reduction.normalize();
        reduction_s += t.elapsed().as_secs_f64();
        reductions.push(reduction);
        eprintln!(
            "[sockscope] crawled {}: crawl {:.1}s cum, reduce {:.1}s cum",
            era.label(),
            crawl_s,
            reduction_s
        );
    }
    let t = Instant::now();
    let study = Study::assemble(&web, engine, reductions);
    reduction_s += t.elapsed().as_secs_f64();

    // Matcher race 1: one-pass PII classification vs per-regex reference.
    let t = Instant::now();
    let mut items_one_pass = 0u64;
    for msg in &corpus.messages {
        items_one_pass += lib.classify_sent_text(msg).len() as u64;
    }
    let one_pass_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut items_per_regex = 0u64;
    for msg in &corpus.messages {
        items_per_regex += lib.classify_sent_text_reference(msg).len() as u64;
    }
    let per_regex_s = t.elapsed().as_secs_f64();
    assert_eq!(
        items_one_pass, items_per_regex,
        "one-pass and per-regex classification disagree"
    );

    // Matcher race 2: token-indexed filter decide vs linear reference.
    let parsed: Vec<(Url, Url, ResourceType)> = corpus
        .requests
        .iter()
        .filter_map(|(page, url, rtype)| {
            Some((Url::parse(page).ok()?, Url::parse(url).ok()?, *rtype))
        })
        .collect();
    let t = Instant::now();
    let mut blocked_tokenized = 0u64;
    for (page, url, resource_type) in &parsed {
        let ctx = RequestContext {
            url,
            page,
            resource_type: *resource_type,
        };
        blocked_tokenized += study.engine.evaluate(&ctx).is_blocked() as u64;
    }
    let tokenized_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut blocked_linear = 0u64;
    for (page, url, resource_type) in &parsed {
        let ctx = RequestContext {
            url,
            page,
            resource_type: *resource_type,
        };
        blocked_linear += study.engine.evaluate_reference(&ctx).is_blocked() as u64;
    }
    let linear_s = t.elapsed().as_secs_f64();
    assert_eq!(
        blocked_tokenized, blocked_linear,
        "tokenized and linear filter decisions disagree"
    );

    let dfa = lib.cache_stats();
    let index = study.engine.index_stats();
    let report = BenchReport {
        schema: SCHEMA.to_string(),
        sites: config.n_sites,
        threads: config.threads,
        seed_hex: format!("{:#x}", config.seed),
        stages: Stages {
            universe_s,
            filters_s,
            crawl_s,
            classification_s: one_pass_s,
            reduction_s,
        },
        throughput: Throughput {
            messages_per_s: corpus.messages.len() as f64 / one_pass_s.max(1e-9),
            urls_per_s: parsed.len() as f64 / tokenized_s.max(1e-9),
        },
        matchers: Matchers {
            classify: Classify {
                messages: corpus.messages.len(),
                one_pass_s,
                per_regex_s,
                speedup: per_regex_s / one_pass_s.max(1e-9),
                items: items_one_pass,
            },
            decide: Decide {
                urls: parsed.len(),
                tokenized_s,
                linear_s,
                speedup: linear_s / tokenized_s.max(1e-9),
                blocked: blocked_tokenized,
            },
            dfa: DfaCounters {
                states: dfa.states,
                classes: dfa.classes,
                trans_computed: dfa.trans_computed,
                trans_cached: dfa.trans_cached,
                scans: dfa.scans,
                fallbacks: dfa.fallbacks,
            },
            filter_index: IndexCounters {
                rules: index.rules as u64,
                domain_indexed: index.domain_indexed as u64,
                tokenized: index.tokenized as u64,
                untokenized: index.untokenized as u64,
            },
        },
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(DEFAULT_PATH, &json).expect("write BENCH_pipeline.json");
    eprintln!(
        "[sockscope] classify: {} msgs, one-pass {:.2}s vs per-regex {:.2}s ({:.1}x)",
        report.matchers.classify.messages,
        report.matchers.classify.one_pass_s,
        report.matchers.classify.per_regex_s,
        report.matchers.classify.speedup
    );
    eprintln!(
        "[sockscope] decide: {} urls, tokenized {:.2}s vs linear {:.2}s ({:.1}x)",
        report.matchers.decide.urls,
        report.matchers.decide.tokenized_s,
        report.matchers.decide.linear_s,
        report.matchers.decide.speedup
    );
    eprintln!("[sockscope] wrote {DEFAULT_PATH}");
    println!("{json}");
}

/// Validates a previously written report: parse (which checks every key is
/// present with the right type), then sanity-check the numbers.
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf --check: cannot read {path}: {e}"));
    let report: BenchReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("perf --check: {path} does not match the schema: {e:?}"));
    assert_eq!(report.schema, SCHEMA, "schema tag mismatch");
    assert!(report.sites > 0, "sites must be positive");
    let stages = [
        ("universe_s", report.stages.universe_s),
        ("filters_s", report.stages.filters_s),
        ("crawl_s", report.stages.crawl_s),
        ("classification_s", report.stages.classification_s),
        ("reduction_s", report.stages.reduction_s),
    ];
    for (name, v) in stages {
        assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
    }
    assert!(report.throughput.messages_per_s > 0.0);
    assert!(report.throughput.urls_per_s > 0.0);
    assert!(
        report.matchers.classify.messages > 0,
        "empty classify corpus"
    );
    assert!(report.matchers.decide.urls > 0, "empty decide corpus");
    for (name, v) in [
        ("classify.speedup", report.matchers.classify.speedup),
        ("decide.speedup", report.matchers.decide.speedup),
    ] {
        assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
    }
    assert!(report.matchers.filter_index.rules > 0, "no rules compiled");
    println!("perf --check: {path} OK");
}
