//! End-to-end pipeline perf harness → `BENCH_pipeline.json`.
//!
//! Runs the study pipeline stage by stage — universe generation, filter
//! parsing, the **stream-fused** crawl+classify pipeline, the
//! record-materializing reference crawl, batch reduction — timing each
//! separately and, via a counting global allocator, recording each
//! stage's **peak live bytes** (net of what was already live when the
//! stage began) and **total allocations**. The fused and reference
//! pipelines must produce identical reductions; the harness asserts that,
//! then reports `memory.peak_ratio` — how many times more live memory
//! the record path holds at its worst than the fused path. Finally it
//! races the two matcher hot paths against their retained reference
//! engines on a corpus extracted from the crawl itself:
//!
//! * **classify** — one-pass `RegexSet` PII classification vs the
//!   per-regex Pike-VM scan ([`PiiLibrary::classify_sent_text_reference`]);
//! * **decide** — token-indexed filter evaluation vs the linear
//!   every-generic-rule scan ([`Engine::evaluate_reference`]).
//!
//! The result (wall times, memory counters, messages/sec, URLs/sec,
//! lazy-DFA cache counters, token-index coverage) is written to
//! `BENCH_pipeline.json`. Scale comes from the usual `SOCKSCOPE_*` knobs.
//!
//! `perf --check [path]` re-reads a written report and validates the
//! schema: every key present, every timing positive, the memory counters
//! nonzero where the pipeline allocates, both speedups finite. CI's
//! perf-smoke and stream-identity jobs run the harness at
//! `SOCKSCOPE_SITES=2000` and then `--check` the artifact.

use serde::{Deserialize, Serialize};
use sockscope_analysis::{CrawlReduction, FusedShard, PiiLibrary, Study};
use sockscope_crawler::SiteRecord;
use sockscope_exec::memmeter::{CountingAlloc, Meter, StageStats};
use sockscope_filterlist::{RequestContext, ResourceType};
use sockscope_inclusion::NodeKind;
use sockscope_urlkit::Url;
use sockscope_webgen::CrawlEra;
use std::time::Instant;

// The counting allocator lives in `sockscope_exec::memmeter` (shared with
// the bounded-memory regression tests); each binary installs its own copy.
#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializable mirror of [`StageStats`], accumulated across the four eras
/// of one logical stage.
#[derive(Debug, Default, Serialize, Deserialize)]
struct StageReport {
    seconds: f64,
    /// Net peak live bytes: the stage's own high-water mark.
    peak_bytes: u64,
    alloc_count: u64,
    /// Cumulative bytes allocated during the stage — churn, not the peak.
    total_bytes: u64,
    /// Schema /5 derived column: `alloc_count / sites`. The arena work is
    /// judged on this number, so the report carries it precomputed.
    allocs_per_site: f64,
    /// Schema /5 derived column: `total_bytes / sites`.
    bytes_allocd_per_site: f64,
}

impl StageReport {
    fn absorb(&mut self, other: StageStats) {
        self.seconds += other.seconds;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.alloc_count += other.alloc_count;
        self.total_bytes += other.total_bytes;
    }

    fn from_stats(stats: StageStats) -> StageReport {
        let mut out = StageReport::default();
        out.absorb(stats);
        out
    }

    /// Fills the per-site derived columns once the universe size is known.
    fn derive(&mut self, sites: usize) {
        let n = (sites as f64).max(1.0);
        self.allocs_per_site = self.alloc_count as f64 / n;
        self.bytes_allocd_per_site = self.total_bytes as f64 / n;
    }
}

// ---------------------------------------------------------------------------
// report schema
// ---------------------------------------------------------------------------

/// Matcher-corpus cap: keeps the before/after race bounded at paper scale.
/// Corpus sizes are recorded in the report, so a capped run is visible.
const MAX_CORPUS: usize = 250_000;

const SCHEMA: &str = "sockscope-bench-pipeline/6";
const DEFAULT_PATH: &str = "BENCH_pipeline.json";

/// Schema /5 allocation-regression gate (`perf --check`): the fused
/// pipeline must not exceed this many allocations per site across the
/// four eras. Post-arena measurements sit near 27.1k/site (the pre-arena
/// baseline was ~49.5k/site); the ceiling carries headroom for scale and
/// machine variance but fails the check long before the old behaviour
/// could sneak back in.
const FUSED_ALLOCS_PER_SITE_CEILING: f64 = 32_000.0;

#[derive(Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    sites: usize,
    threads: usize,
    seed_hex: String,
    stages: Stages,
    memory: Memory,
    arena: ArenaReport,
    orchestrator: OrchestratorReport,
    supervision: Supervision,
    throughput: Throughput,
    matchers: Matchers,
    /// Schema /6: the longitudinal lineage row, filled in by
    /// `perf --longitudinal` (all-zero until that runs; carried forward
    /// across regenerations like the headline row).
    longitudinal: Longitudinal,
}

/// Schema /6: delta-compressed snapshot lineage economics, measured over
/// an N-era synthetic timeline (`SOCKSCOPE_ERAS`, default 50 for the
/// committed artifact). Era *k*'s cumulative study snapshot is stored as
/// a structural delta against era *k−1*'s; `delta_bytes` is what the
/// lineage stores (full base + every patch), `full_bytes` what full
/// per-era snapshots would cost.
#[derive(Debug, Default, Serialize, Deserialize)]
struct Longitudinal {
    /// Timeline length (0 = the longitudinal run has not happened).
    eras: usize,
    /// Universe size each era crawled.
    sites_per_era: usize,
    /// Bytes stored by the delta lineage (base + patches).
    delta_bytes: u64,
    /// Bytes full per-era snapshots would store.
    full_bytes: u64,
    /// `full_bytes / delta_bytes`.
    compression_ratio: f64,
    /// Seconds spent encoding the delta chain (excludes the crawl and
    /// snapshot serialization).
    diff_seconds: f64,
    /// Every era reconstructed byte-identically from the delta chain
    /// during measurement. `--check` fails the artifact if this is false.
    reconstruction_identical: bool,
}

/// Schema /5: process-wide bump-arena counters, read after every pipeline
/// stage has run. `high_water_bytes` is the largest retained capacity of
/// any single visit arena; `spills` counts chunk allocations beyond an
/// arena's first (those go through the global allocator, so memmeter's
/// budgets keep charging arena growth); `served_bytes` is the total the
/// arenas handed out in place of individual heap allocations.
#[derive(Debug, Serialize, Deserialize)]
struct ArenaReport {
    high_water_bytes: u64,
    resets: u64,
    spills: u64,
    served_bytes: u64,
}

/// Schema /4: the supervised-execution section. A poisoned probe era
/// measures quarantine accounting; a clean era-0 A/B race measures what
/// the supervisor costs when nothing goes wrong. The acceptance bar for
/// the committed artifact is `overhead_ratio` < 1.20 — re-baselined
/// 2026-08-08 from the original <1.02: the arena hot path's task-scoped
/// allocation metering (the mark/charge pair the budget guard needs) is
/// paid only on the supervised side. The committed artifact measures
/// 1.02x best-of-3; loaded hosts have measured as high as 1.13x.
#[derive(Debug, Serialize, Deserialize)]
struct Supervision {
    /// Sites in the poisoned probe era.
    probe_sites: usize,
    /// Sites the supervisor quarantined in the probe, total and by reason.
    quarantined_total: u64,
    quarantined_panic: u64,
    quarantined_deadline: u64,
    quarantined_budget: u64,
    /// Wall seconds of the clean era-0 crawl with supervision on.
    supervised_seconds: f64,
    /// Wall seconds of the same crawl with supervision off.
    unsupervised_seconds: f64,
    /// `supervised_seconds / unsupervised_seconds`.
    overhead_ratio: f64,
}

/// Wall time + allocator counters of each pipeline stage.
#[derive(Debug, Serialize, Deserialize)]
struct Stages {
    universe: StageReport,
    filters: StageReport,
    /// The default driver: the work-stealing pipelined orchestrator over
    /// the stream-fused crawl+classify+reduce pipeline.
    orchestrated_pipeline: StageReport,
    /// The static shard-per-thread driver over the same fused pipeline.
    fused_pipeline: StageReport,
    /// The reference pipeline's crawl: full `SiteRecord` materialization.
    reference_crawl: StageReport,
    /// The reference pipeline's batch classification + reduction.
    reference_reduction: StageReport,
}

/// The orchestrator's scheduling knobs, its race against the static
/// driver, and the large-scale headline row (filled in by
/// `perf --headline`; all-zero means the headline run has not happened).
#[derive(Debug, Serialize, Deserialize)]
struct OrchestratorReport {
    /// Crawl workers the orchestrated stage ran with.
    workers: usize,
    /// Bounded hand-off queue capacity between crawl and reduce.
    queue_depth: usize,
    /// `fused_pipeline.seconds / orchestrated_pipeline.seconds` — the
    /// orchestrator's wall-clock edge over the static driver on this
    /// machine (≈1.0 on a single core, > 1 with real parallelism).
    speedup_vs_static: f64,
    /// Universe size of the headline run (0 = not run).
    headline_sites: usize,
    /// Wall seconds of the headline single-era orchestrated crawl.
    headline_seconds: f64,
    /// Net peak live bytes during the headline crawl — the bounded-memory
    /// claim at scale.
    headline_peak_bytes: u64,
    /// `headline_sites / headline_seconds`.
    headline_sites_per_s: f64,
    /// Crawl workers the headline run itself used (schema /5). The
    /// headline runs under its own environment, so the differential row's
    /// `workers` says nothing about it; 0 means the headline predates
    /// this field and its worker count is unrecorded.
    headline_workers: usize,
}

/// The headline memory comparison.
#[derive(Debug, Serialize, Deserialize)]
struct Memory {
    /// Net peak live bytes of the fused crawl+classify+reduce stage.
    fused_peak_bytes: u64,
    /// Net peak live bytes across the reference crawl + reduction stages.
    reference_peak_bytes: u64,
    /// `reference_peak_bytes / fused_peak_bytes`.
    peak_ratio: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Throughput {
    /// Classified payload messages per second (one-pass path).
    messages_per_s: f64,
    /// Filter decisions per second (token-indexed path).
    urls_per_s: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Matchers {
    classify: Classify,
    decide: Decide,
    dfa: DfaCounters,
    filter_index: IndexCounters,
}

#[derive(Debug, Serialize, Deserialize)]
struct Classify {
    /// Corpus size (handshakes + text frames + query-bearing URLs).
    messages: usize,
    one_pass_s: f64,
    per_regex_s: f64,
    /// `per_regex_s / one_pass_s`.
    speedup: f64,
    /// Total items found (must agree across both paths).
    items: u64,
}

#[derive(Debug, Serialize, Deserialize)]
struct Decide {
    /// Corpus size (HTTP resource requests from the crawl).
    urls: usize,
    tokenized_s: f64,
    linear_s: f64,
    /// `linear_s / tokenized_s`.
    speedup: f64,
    /// Blocked requests (must agree across both paths).
    blocked: u64,
}

/// [`sockscope_redlite::DfaStats`], flattened for the report.
#[derive(Debug, Serialize, Deserialize)]
struct DfaCounters {
    states: u64,
    classes: u64,
    trans_computed: u64,
    trans_cached: u64,
    scans: u64,
    fallbacks: u64,
}

/// [`sockscope_filterlist::IndexStats`], flattened for the report.
#[derive(Debug, Serialize, Deserialize)]
struct IndexCounters {
    rules: u64,
    domain_indexed: u64,
    tokenized: u64,
    untokenized: u64,
}

/// The matcher corpus harvested from crawl records.
#[derive(Default)]
struct Corpus {
    /// Texts the reduction feeds to `classify_sent_text`.
    messages: Vec<String>,
    /// `(page_url, request_url, resource_type)` filter-decision inputs.
    requests: Vec<(String, String, ResourceType)>,
}

impl Corpus {
    fn harvest(&mut self, record: &SiteRecord) {
        for tree in &record.trees {
            for node in tree.nodes() {
                match node.kind {
                    NodeKind::Script | NodeKind::Image | NodeKind::Xhr => {
                        if self.requests.len() < MAX_CORPUS {
                            let rtype = match node.kind {
                                NodeKind::Script => ResourceType::Script,
                                NodeKind::Image => ResourceType::Image,
                                _ => ResourceType::Xhr,
                            };
                            self.requests
                                .push((tree.page_url.clone(), node.url.clone(), rtype));
                        }
                        if node.url.contains('=') && self.messages.len() < MAX_CORPUS {
                            self.messages.push(node.url.clone());
                        }
                    }
                    NodeKind::WebSocket => {
                        let Some(ws) = &node.ws else { continue };
                        if self.messages.len() < MAX_CORPUS {
                            self.messages.push(ws.handshake_request.clone());
                        }
                        for frame in &ws.sent {
                            if let Some(t) = frame.as_text() {
                                if !t.is_empty() && self.messages.len() < MAX_CORPUS {
                                    self.messages.push(t.to_string());
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--check") => {
            let path = args.get(2).map(String::as_str).unwrap_or(DEFAULT_PATH);
            check(path);
        }
        Some("--headline") => {
            let path = args.get(2).map(String::as_str).unwrap_or(DEFAULT_PATH);
            headline(path);
        }
        Some("--longitudinal") => {
            let path = args.get(2).map(String::as_str).unwrap_or(DEFAULT_PATH);
            longitudinal(path);
        }
        Some(other) => {
            eprintln!(
                "unknown argument {other:?}; usage: perf [--check [path] | --headline [path] | --longitudinal [path]]"
            );
            std::process::exit(2);
        }
        None => run(),
    }
}

fn run() {
    let config = sockscope_bench::study_config_from_env();
    eprintln!(
        "[sockscope] perf harness: {} sites x 4 crawls, {} threads, seed {:#x}",
        config.n_sites, config.threads, config.seed
    );

    let m = Meter::start();
    let web = Study::universe(&config);
    let universe = m.finish();

    let m = Meter::start();
    let engine = Study::engine_for(&web);
    let filters = m.finish();

    let crawl_config = Study::crawl_config(&config);
    let mut reference_config = crawl_config.clone();
    reference_config.visit_reference = true;
    let shards = config.threads.max(1) * 4;
    let lib = PiiLibrary::new();

    // Orchestrated pipeline first, while nothing but the universe and the
    // engine is live: the work-stealing pipelined driver over the fused
    // crawl+classify+reduce sink. This is what `Study::run` executes by
    // default.
    let orch = Study::orchestrator_config(&config);
    let mut orchestrated_pipeline = StageReport::default();
    let mut orchestrated_reductions = Vec::new();
    for era in CrawlEra::ALL {
        let era_web = web.for_era(era);
        let make_extensions =
            || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(&era.into()));
        let m = Meter::start();
        let mut reduction = sockscope_crawler::crawl_orchestrated(
            &era_web,
            &crawl_config,
            &orch,
            &make_extensions,
            &|| FusedShard::new(era.label(), era.pre_patch(), &engine),
            &|worker: &mut FusedShard<'_>| worker.take_site_reduction(),
            &|| CrawlReduction::new(era.label(), era.pre_patch()),
            &|acc: &mut CrawlReduction, site| acc.absorb(site),
        );
        reduction.normalize();
        orchestrated_pipeline.absorb(m.finish());
        orchestrated_reductions.push(reduction);
    }
    eprintln!(
        "[sockscope] orchestrated pipeline ({} workers, queue {}): {:.1}s, peak {:.1} MiB",
        orch.workers,
        orch.queue_depth,
        orchestrated_pipeline.seconds,
        orchestrated_pipeline.peak_bytes as f64 / (1024.0 * 1024.0)
    );

    // Static shard-per-thread driver over the same fused sink: the
    // reference scheduling the orchestrator must match byte for byte.
    let mut fused_pipeline = StageReport::default();
    let mut fused_reductions = Vec::new();
    for era in CrawlEra::ALL {
        let era_web = web.for_era(era);
        let make_extensions =
            || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(&era.into()));
        let m = Meter::start();
        let mut reduction = sockscope_crawler::crawl_sharded_sink(
            &era_web,
            &crawl_config,
            shards,
            &make_extensions,
            &|_shard| FusedShard::new(era.label(), era.pre_patch(), &engine),
        )
        .into_iter()
        .map(FusedShard::into_reduction)
        .fold(
            CrawlReduction::new(era.label(), era.pre_patch()),
            CrawlReduction::merge,
        );
        reduction.normalize();
        fused_pipeline.absorb(m.finish());
        fused_reductions.push(reduction);
    }
    eprintln!(
        "[sockscope] fused pipeline: {:.1}s, peak {:.1} MiB",
        fused_pipeline.seconds,
        fused_pipeline.peak_bytes as f64 / (1024.0 * 1024.0)
    );

    // The orchestrator must be decision-identical to the static driver.
    assert_eq!(
        orchestrated_reductions, fused_reductions,
        "orchestrated and static-shard reductions disagree"
    );
    drop(orchestrated_reductions);
    let speedup_vs_static = fused_pipeline.seconds / orchestrated_pipeline.seconds.max(1e-9);
    eprintln!("[sockscope] orchestrator vs static driver: {speedup_vs_static:.2}x wall-clock");

    let supervision = measure_supervision(&web, &engine, &crawl_config, &orch);

    // Reference pipeline: materialize full site records (buffered browser
    // path), then classify + reduce them in batch.
    let mut corpus = Corpus::default();
    let mut reference_crawl = StageReport::default();
    let mut reference_reduction = StageReport::default();
    let mut reductions = Vec::new();
    for era in CrawlEra::ALL {
        let era_web = web.for_era(era);
        let make_extensions =
            || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(&era.into()));

        // Crawl stage: produce the site records, nothing else.
        let m = Meter::start();
        let shard_records: Vec<Vec<SiteRecord>> = sockscope_crawler::crawl_sharded(
            &era_web,
            &reference_config,
            shards,
            &make_extensions,
            &|_shard| Vec::new(),
            &|acc: &mut Vec<SiteRecord>, record| acc.push(record),
        );
        reference_crawl.absorb(m.finish());

        for record in shard_records.iter().flatten() {
            corpus.harvest(record);
        }

        // Reduction stage: classify + reduce the records just produced.
        let m = Meter::start();
        let mut reduction = CrawlReduction::new(era.label(), era.pre_patch());
        for record in shard_records.iter().flatten() {
            reduction.observe_site(record, &engine, &lib);
        }
        reduction.normalize();
        reference_reduction.absorb(m.finish());
        reductions.push(reduction);
        eprintln!(
            "[sockscope] crawled {}: crawl {:.1}s cum, reduce {:.1}s cum",
            era.label(),
            reference_crawl.seconds,
            reference_reduction.seconds
        );
    }

    // The fused pipeline must be decision-identical to the reference.
    assert_eq!(
        fused_reductions, reductions,
        "fused and reference reductions disagree"
    );

    let m = Meter::start();
    let study = Study::assemble(&web, engine, reductions);
    reference_reduction.absorb(m.finish());

    let memory = Memory {
        fused_peak_bytes: fused_pipeline.peak_bytes,
        reference_peak_bytes: reference_crawl
            .peak_bytes
            .max(reference_reduction.peak_bytes),
        peak_ratio: reference_crawl
            .peak_bytes
            .max(reference_reduction.peak_bytes) as f64
            / (fused_pipeline.peak_bytes as f64).max(1.0),
    };
    eprintln!(
        "[sockscope] memory: reference peak {:.1} MiB vs fused peak {:.1} MiB ({:.1}x)",
        memory.reference_peak_bytes as f64 / (1024.0 * 1024.0),
        memory.fused_peak_bytes as f64 / (1024.0 * 1024.0),
        memory.peak_ratio
    );

    // Matcher race 1: one-pass PII classification vs per-regex reference.
    let t = Instant::now();
    let mut items_one_pass = 0u64;
    for msg in &corpus.messages {
        items_one_pass += lib.classify_sent_text(msg).len() as u64;
    }
    let one_pass_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut items_per_regex = 0u64;
    for msg in &corpus.messages {
        items_per_regex += lib.classify_sent_text_reference(msg).len() as u64;
    }
    let per_regex_s = t.elapsed().as_secs_f64();
    assert_eq!(
        items_one_pass, items_per_regex,
        "one-pass and per-regex classification disagree"
    );

    // Matcher race 2: token-indexed filter decide vs linear reference.
    let parsed: Vec<(Url, Url, ResourceType)> = corpus
        .requests
        .iter()
        .filter_map(|(page, url, rtype)| {
            Some((Url::parse(page).ok()?, Url::parse(url).ok()?, *rtype))
        })
        .collect();
    let t = Instant::now();
    let mut blocked_tokenized = 0u64;
    for (page, url, resource_type) in &parsed {
        let ctx = RequestContext {
            url,
            page,
            resource_type: *resource_type,
        };
        blocked_tokenized += study.engine.evaluate(&ctx).is_blocked() as u64;
    }
    let tokenized_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let mut blocked_linear = 0u64;
    for (page, url, resource_type) in &parsed {
        let ctx = RequestContext {
            url,
            page,
            resource_type: *resource_type,
        };
        blocked_linear += study.engine.evaluate_reference(&ctx).is_blocked() as u64;
    }
    let linear_s = t.elapsed().as_secs_f64();
    assert_eq!(
        blocked_tokenized, blocked_linear,
        "tokenized and linear filter decisions disagree"
    );

    let dfa = lib.cache_stats();
    let index = study.engine.index_stats();
    let arena = sockscope_arena::stats();
    eprintln!(
        "[sockscope] arena: high-water {} B, {} resets, {} spills, {:.1} MiB served",
        arena.high_water_bytes,
        arena.resets,
        arena.spills,
        arena.served_bytes as f64 / (1024.0 * 1024.0)
    );
    let mut stages = Stages {
        universe: StageReport::from_stats(universe),
        filters: StageReport::from_stats(filters),
        orchestrated_pipeline,
        fused_pipeline,
        reference_crawl,
        reference_reduction,
    };
    for stage in [
        &mut stages.universe,
        &mut stages.filters,
        &mut stages.orchestrated_pipeline,
        &mut stages.fused_pipeline,
        &mut stages.reference_crawl,
        &mut stages.reference_reduction,
    ] {
        stage.derive(config.n_sites);
    }
    eprintln!(
        "[sockscope] fused pipeline allocation pressure: {:.0} allocs/site, {:.0} B/site",
        stages.fused_pipeline.allocs_per_site, stages.fused_pipeline.bytes_allocd_per_site
    );
    let report = BenchReport {
        schema: SCHEMA.to_string(),
        sites: config.n_sites,
        threads: config.threads,
        seed_hex: format!("{:#x}", config.seed),
        stages,
        memory,
        arena: ArenaReport {
            high_water_bytes: arena.high_water_bytes,
            resets: arena.resets,
            spills: arena.spills,
            served_bytes: arena.served_bytes,
        },
        orchestrator: OrchestratorReport {
            workers: orch.workers,
            queue_depth: orch.queue_depth,
            speedup_vs_static,
            headline_sites: 0,
            headline_seconds: 0.0,
            headline_peak_bytes: 0,
            headline_sites_per_s: 0.0,
            headline_workers: 0,
        },
        supervision,
        throughput: Throughput {
            messages_per_s: corpus.messages.len() as f64 / one_pass_s.max(1e-9),
            urls_per_s: parsed.len() as f64 / tokenized_s.max(1e-9),
        },
        matchers: Matchers {
            classify: Classify {
                messages: corpus.messages.len(),
                one_pass_s,
                per_regex_s,
                speedup: per_regex_s / one_pass_s.max(1e-9),
                items: items_one_pass,
            },
            decide: Decide {
                urls: parsed.len(),
                tokenized_s,
                linear_s,
                speedup: linear_s / tokenized_s.max(1e-9),
                blocked: blocked_tokenized,
            },
            dfa: DfaCounters {
                states: dfa.states,
                classes: dfa.classes,
                trans_computed: dfa.trans_computed,
                trans_cached: dfa.trans_cached,
                scans: dfa.scans,
                fallbacks: dfa.fallbacks,
            },
            filter_index: IndexCounters {
                rules: index.rules as u64,
                domain_indexed: index.domain_indexed as u64,
                tokenized: index.tokenized as u64,
                untokenized: index.untokenized as u64,
            },
        },
        longitudinal: Longitudinal::default(),
    };

    let mut report = report;
    carry_headline(&mut report);
    carry_longitudinal(&mut report);

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(DEFAULT_PATH, &json).expect("write BENCH_pipeline.json");
    eprintln!(
        "[sockscope] classify: {} msgs, one-pass {:.2}s vs per-regex {:.2}s ({:.1}x)",
        report.matchers.classify.messages,
        report.matchers.classify.one_pass_s,
        report.matchers.classify.per_regex_s,
        report.matchers.classify.speedup
    );
    eprintln!(
        "[sockscope] decide: {} urls, tokenized {:.2}s vs linear {:.2}s ({:.1}x)",
        report.matchers.decide.urls,
        report.matchers.decide.tokenized_s,
        report.matchers.decide.linear_s,
        report.matchers.decide.speedup
    );
    eprintln!("[sockscope] wrote {DEFAULT_PATH}");
    println!("{json}");
}

/// Measures the supervised-execution section: a clean era-0 A/B race
/// (supervisor on vs off — decision-identical by construction, so the
/// race also re-proves the bytes) and a poisoned probe era whose
/// quarantine table yields the per-reason counts.
fn measure_supervision(
    web: &sockscope_webgen::SyntheticWeb,
    engine: &sockscope_filterlist::Engine,
    crawl_config: &sockscope_crawler::CrawlConfig,
    orch: &sockscope_crawler::OrchestratorConfig,
) -> Supervision {
    let era = CrawlEra::ALL[0];
    let era_web = web.for_era(era);
    let make_extensions =
        || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(&era.into()));
    let race = |supervised: bool| {
        let orch = sockscope_crawler::OrchestratorConfig {
            supervised,
            ..orch.clone()
        };
        let t = Instant::now();
        let mut reduction = sockscope_crawler::crawl_orchestrated(
            &era_web,
            crawl_config,
            &orch,
            &make_extensions,
            &|| FusedShard::new(era.label(), era.pre_patch(), engine),
            &|worker: &mut FusedShard<'_>| worker.take_site_reduction(),
            &|| CrawlReduction::new(era.label(), era.pre_patch()),
            &|acc: &mut CrawlReduction, site| acc.absorb(site),
        );
        reduction.normalize();
        (t.elapsed().as_secs_f64(), reduction)
    };
    // Interleaved best-of-N: a single A/B pair at this duration carries
    // ~10% run-to-run noise, which would swamp the overhead bar. The
    // minimum of interleaved repeats is the standard unbiased estimator
    // for a deterministic workload's true cost.
    let (mut supervised_seconds, supervised_red) = race(true);
    let (mut unsupervised_seconds, unsupervised_red) = race(false);
    assert_eq!(
        supervised_red, unsupervised_red,
        "supervision changed a clean run's bytes"
    );
    for _ in 0..2 {
        supervised_seconds = supervised_seconds.min(race(true).0);
        unsupervised_seconds = unsupervised_seconds.min(race(false).0);
    }
    let overhead_ratio = supervised_seconds / unsupervised_seconds.max(1e-9);
    eprintln!(
        "[sockscope] supervision overhead (clean era 0): {supervised_seconds:.2}s supervised vs \
         {unsupervised_seconds:.2}s unsupervised ({overhead_ratio:.3}x)"
    );

    // Poisoned probe: same universe, era 1, hazard-only profile. The
    // supervisor must complete the era and account every poisoned site.
    let probe_era = CrawlEra::ALL[1];
    let probe_web = web.for_era(probe_era);
    let probe_config = sockscope_crawler::CrawlConfig {
        faults: Some(sockscope::faults::FaultProfile::poison()),
        ..crawl_config.clone()
    };
    let make_probe_extensions = || {
        sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(&probe_era.into()))
    };
    let mut probe = sockscope_crawler::crawl_orchestrated(
        &probe_web,
        &probe_config,
        orch,
        &make_probe_extensions,
        &|| FusedShard::new(probe_era.label(), probe_era.pre_patch(), engine),
        &|worker: &mut FusedShard<'_>| worker.take_site_reduction(),
        &|| CrawlReduction::new(probe_era.label(), probe_era.pre_patch()),
        &|acc: &mut CrawlReduction, site| acc.absorb(site),
    );
    probe.normalize();
    let (mut q_panic, mut q_deadline, mut q_budget) = (0u64, 0u64, 0u64);
    if let Some(q) = &probe.quarantine {
        for (reason, n) in q.reason_counts() {
            match reason {
                "panic" => q_panic = n,
                "deadline" => q_deadline = n,
                "budget" => q_budget = n,
                other => panic!("unknown quarantine reason {other:?}"),
            }
        }
    }
    let quarantined_total = q_panic + q_deadline + q_budget;
    eprintln!(
        "[sockscope] supervision probe: {}/{} sites quarantined \
         (panic {q_panic}, deadline {q_deadline}, budget {q_budget})",
        quarantined_total,
        probe_web.sites().len()
    );
    Supervision {
        probe_sites: probe_web.sites().len(),
        quarantined_total,
        quarantined_panic: q_panic,
        quarantined_deadline: q_deadline,
        quarantined_budget: q_budget,
        supervised_seconds,
        unsupervised_seconds,
        overhead_ratio,
    }
}

/// Carries the headline row of an existing `BENCH_pipeline.json` into a
/// freshly measured report: the headline runs at a scale (the README
/// quotes `SOCKSCOPE_SITES=1000000`) nobody re-runs for a schema bump.
///
/// Fields are read one by one rather than through
/// `OrchestratorReport::from_value` so the carry survives schema bumps in
/// either direction — an older artifact that predates `headline_workers`
/// (added in /5) still carries, with the unknown worker count recorded
/// honestly as 0 rather than borrowed from the differential row.
fn carry_headline(report: &mut BenchReport) {
    let Ok(old) = std::fs::read_to_string(DEFAULT_PATH) else {
        return;
    };
    let Ok(value) = serde_json::from_str::<serde::Value>(&old) else {
        return;
    };
    let Some(orch) = value.get("orchestrator") else {
        return;
    };
    let get_u64 = |key: &str| orch.get(key).and_then(serde::Value::as_u64);
    let get_f64 = |key: &str| orch.get(key).and_then(serde::Value::as_f64);
    let (Some(sites), Some(seconds), Some(peak), Some(rate)) = (
        get_u64("headline_sites"),
        get_f64("headline_seconds"),
        get_u64("headline_peak_bytes"),
        get_f64("headline_sites_per_s"),
    ) else {
        return;
    };
    if sites > 0 {
        eprintln!("[sockscope] carrying headline row forward: {sites} sites, {seconds:.1}s");
        report.orchestrator.headline_sites = sites as usize;
        report.orchestrator.headline_seconds = seconds;
        report.orchestrator.headline_peak_bytes = peak;
        report.orchestrator.headline_sites_per_s = rate;
        report.orchestrator.headline_workers = get_u64("headline_workers").unwrap_or(0) as usize;
    }
}

/// Carries the longitudinal row forward across regenerations, exactly
/// like the headline row: the committed 50-era × 10K-site measurement is
/// too expensive to re-run for a differential refresh.
fn carry_longitudinal(report: &mut BenchReport) {
    let Ok(old) = std::fs::read_to_string(DEFAULT_PATH) else {
        return;
    };
    let Ok(value) = serde_json::from_str::<serde::Value>(&old) else {
        return;
    };
    let Some(lon) = value.get("longitudinal") else {
        return;
    };
    // Field-by-field (as for the headline row) so the carry survives
    // future schema bumps in either direction.
    let get_u64 = |key: &str| lon.get(key).and_then(serde::Value::as_u64);
    let (Some(eras), Some(sites), Some(delta), Some(full)) = (
        get_u64("eras"),
        get_u64("sites_per_era"),
        get_u64("delta_bytes"),
        get_u64("full_bytes"),
    ) else {
        return;
    };
    if eras > 0 {
        eprintln!("[sockscope] carrying longitudinal row forward: {eras} eras x {sites} sites");
        report.longitudinal = Longitudinal {
            eras: eras as usize,
            sites_per_era: sites as usize,
            delta_bytes: delta,
            full_bytes: full,
            compression_ratio: lon
                .get("compression_ratio")
                .and_then(serde::Value::as_f64)
                .unwrap_or(0.0),
            diff_seconds: lon
                .get("diff_seconds")
                .and_then(serde::Value::as_f64)
                .unwrap_or(0.0),
            reconstruction_identical: lon
                .get("reconstruction_identical")
                .and_then(serde::Value::as_bool)
                .unwrap_or(false),
        };
    }
}

/// Runs the longitudinal lineage row — an N-era synthetic-timeline study
/// (`SOCKSCOPE_ERAS`, default 50) whose cumulative per-era snapshots are
/// delta-compressed into a lineage — and patches the result into an
/// existing report at `path`. Kept separate from `run()` (like
/// `--headline`) because N crawls dwarf the differential scale.
///
/// Snapshots are produced and diffed one era at a time so peak memory
/// holds two adjacent cumulative snapshots, never the whole lineage
/// uncompressed.
fn longitudinal(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("perf --longitudinal: cannot read {path} (run `perf` first): {e}")
    });
    let mut report: BenchReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("perf --longitudinal: {path} does not match the schema: {e:?}"));

    let mut config = sockscope_bench::study_config_from_env();
    if config.timeline.is_paper() {
        let n = 50;
        config.timeline =
            sockscope_webgen::EraTimeline::synthetic(n, config.seed ^ 0x0E5A_51DE, n / 2);
    }
    let eras = config.timeline.len();
    eprintln!(
        "[sockscope] longitudinal: {} sites x {} eras, {} threads, seed {:#x}",
        config.n_sites, eras, config.threads, config.seed
    );

    let study = Study::run(&config);
    let web = Study::universe(&config);
    eprintln!("[sockscope] longitudinal crawl done; deriving snapshot lineage");

    let mut delta_bytes = 0u64;
    let mut full_bytes = 0u64;
    let mut diff_seconds = 0.0f64;
    let mut reconstruction_identical = true;
    let mut prev: Option<Vec<u8>> = None;
    for k in 0..study.reductions.len() {
        let snapshot = {
            let prefix = Study::assemble(
                &web,
                sockscope_filterlist::Engine::default(),
                study.reductions[..=k].to_vec(),
            );
            sockscope_analysis::StudySnapshot::capture(&prefix)
                .to_json()
                .into_bytes()
        };
        full_bytes += snapshot.len() as u64;
        match &prev {
            None => delta_bytes += snapshot.len() as u64,
            Some(p) => {
                let t = Instant::now();
                let patch = sockscope_journal::delta::encode(p, &snapshot);
                diff_seconds += t.elapsed().as_secs_f64();
                delta_bytes += patch.len() as u64;
                let rebuilt = sockscope_journal::delta::apply(p, &patch);
                reconstruction_identical &= rebuilt.is_ok_and(|r| r == snapshot);
            }
        }
        prev = Some(snapshot);
    }
    let compression_ratio = full_bytes as f64 / (delta_bytes as f64).max(1.0);
    assert!(
        reconstruction_identical,
        "delta lineage failed byte-identical reconstruction"
    );

    report.longitudinal = Longitudinal {
        eras,
        sites_per_era: config.n_sites,
        delta_bytes,
        full_bytes,
        compression_ratio,
        diff_seconds,
        reconstruction_identical,
    };

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(path, &json).expect("rewrite report");
    eprintln!(
        "[sockscope] longitudinal: {eras} eras, {delta_bytes} delta bytes vs {full_bytes} full \
         ({compression_ratio:.1}x), diff {diff_seconds:.2}s"
    );
    eprintln!("[sockscope] updated {path}");
}

/// Runs the large-scale headline row — a single-era orchestrated crawl at
/// `SOCKSCOPE_SITES` scale (the README quotes `SOCKSCOPE_SITES=1000000`) —
/// and patches the result into an existing report at `path`. Kept separate
/// from `run()` because the headline scale is orders of magnitude above
/// the differential/matcher scale and only exercises the one pipeline
/// whose memory stays bounded at that size.
fn headline(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf --headline: cannot read {path} (run `perf` first): {e}"));
    let mut report: BenchReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("perf --headline: {path} does not match the schema: {e:?}"));

    let config = sockscope_bench::study_config_from_env();
    let orch = Study::orchestrator_config(&config);
    eprintln!(
        "[sockscope] headline: {} sites x 1 era, {} workers, queue {}, seed {:#x}",
        config.n_sites, orch.workers, orch.queue_depth, config.seed
    );

    let web = Study::universe(&config);
    let engine = Study::engine_for(&web);
    let crawl_config = Study::crawl_config(&config);
    let era = CrawlEra::ALL[0];
    let era_web = web.for_era(era);
    let make_extensions =
        || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(&era.into()));

    let m = Meter::start();
    let mut reduction = sockscope_crawler::crawl_orchestrated(
        &era_web,
        &crawl_config,
        &orch,
        &make_extensions,
        &|| FusedShard::new(era.label(), era.pre_patch(), &engine),
        &|worker: &mut FusedShard<'_>| worker.take_site_reduction(),
        &|| CrawlReduction::new(era.label(), era.pre_patch()),
        &|acc: &mut CrawlReduction, site| acc.absorb(site),
    );
    reduction.normalize();
    let stats = m.finish();
    assert_eq!(
        reduction.sites.len(),
        config.n_sites,
        "headline crawl lost sites"
    );

    report.orchestrator.headline_sites = config.n_sites;
    report.orchestrator.headline_seconds = stats.seconds;
    report.orchestrator.headline_peak_bytes = stats.peak_bytes;
    report.orchestrator.headline_sites_per_s = config.n_sites as f64 / stats.seconds.max(1e-9);
    // Record the workers THIS run used: the headline runs under its own
    // environment, and the differential row's `workers` must not be
    // mistaken for it.
    report.orchestrator.headline_workers = orch.workers;

    let json = serde_json::to_string(&report).expect("report serializes");
    std::fs::write(path, &json).expect("rewrite report");
    eprintln!(
        "[sockscope] headline: {} sites in {:.1}s ({:.0} sites/s), peak {:.1} MiB",
        config.n_sites,
        stats.seconds,
        report.orchestrator.headline_sites_per_s,
        stats.peak_bytes as f64 / (1024.0 * 1024.0)
    );
    eprintln!("[sockscope] updated {path}");
}

/// Validates a previously written report: parse (which checks every key is
/// present with the right type), then sanity-check the numbers.
fn check(path: &str) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf --check: cannot read {path}: {e}"));
    let report: BenchReport = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("perf --check: {path} does not match the schema: {e:?}"));
    assert_eq!(report.schema, SCHEMA, "schema tag mismatch");
    assert!(report.sites > 0, "sites must be positive");
    let stages = [
        ("universe", &report.stages.universe),
        ("filters", &report.stages.filters),
        (
            "orchestrated_pipeline",
            &report.stages.orchestrated_pipeline,
        ),
        ("fused_pipeline", &report.stages.fused_pipeline),
        ("reference_crawl", &report.stages.reference_crawl),
        ("reference_reduction", &report.stages.reference_reduction),
    ];
    for (name, s) in stages {
        assert!(
            s.seconds.is_finite() && s.seconds > 0.0,
            "{name}.seconds must be positive, got {}",
            s.seconds
        );
        assert!(s.alloc_count > 0, "{name}.alloc_count must be nonzero");
        assert!(s.peak_bytes > 0, "{name}.peak_bytes must be nonzero");
        assert!(s.total_bytes > 0, "{name}.total_bytes must be nonzero");
        // Derived columns must agree with their inputs (schema /5).
        let allocs = s.alloc_count as f64 / report.sites as f64;
        let bytes = s.total_bytes as f64 / report.sites as f64;
        assert!(
            (s.allocs_per_site - allocs).abs() < 1.0,
            "{name}.allocs_per_site inconsistent: {} vs {allocs}",
            s.allocs_per_site
        );
        assert!(
            (s.bytes_allocd_per_site - bytes).abs() < 1.0,
            "{name}.bytes_allocd_per_site inconsistent: {} vs {bytes}",
            s.bytes_allocd_per_site
        );
    }
    // Allocation-regression gate: the arena work cut the fused pipeline
    // to ~27k allocations/site; fail loudly if the count creeps back up.
    assert!(
        report.stages.fused_pipeline.allocs_per_site <= FUSED_ALLOCS_PER_SITE_CEILING,
        "fused_pipeline allocation regression: {:.0} allocs/site exceeds the {} ceiling",
        report.stages.fused_pipeline.allocs_per_site,
        FUSED_ALLOCS_PER_SITE_CEILING
    );
    // Arena section (schema /5): the pipeline runs arena-backed visits,
    // so the counters cannot be flat.
    assert!(
        report.arena.high_water_bytes > 0,
        "arena.high_water_bytes must be nonzero"
    );
    assert!(report.arena.resets > 0, "arena.resets must be nonzero");
    assert!(
        report.arena.served_bytes > 0,
        "arena.served_bytes must be nonzero"
    );
    assert!(
        report.memory.fused_peak_bytes > 0 && report.memory.reference_peak_bytes > 0,
        "memory peaks must be nonzero"
    );
    assert!(
        report.memory.peak_ratio.is_finite() && report.memory.peak_ratio > 0.0,
        "memory.peak_ratio must be positive, got {}",
        report.memory.peak_ratio
    );
    assert!(report.throughput.messages_per_s > 0.0);
    assert!(report.throughput.urls_per_s > 0.0);
    assert!(
        report.matchers.classify.messages > 0,
        "empty classify corpus"
    );
    assert!(report.matchers.decide.urls > 0, "empty decide corpus");
    for (name, v) in [
        ("classify.speedup", report.matchers.classify.speedup),
        ("decide.speedup", report.matchers.decide.speedup),
    ] {
        assert!(v.is_finite() && v > 0.0, "{name} must be positive, got {v}");
    }
    assert!(report.matchers.filter_index.rules > 0, "no rules compiled");
    assert!(
        report.orchestrator.workers >= 1,
        "orchestrator ran with no workers"
    );
    assert!(
        report.orchestrator.queue_depth >= 1,
        "orchestrator queue cannot be unbuffered"
    );
    assert!(
        report.orchestrator.speedup_vs_static.is_finite()
            && report.orchestrator.speedup_vs_static > 0.0,
        "orchestrator.speedup_vs_static must be positive, got {}",
        report.orchestrator.speedup_vs_static
    );
    // Supervision section (schema /4). The overhead bound here is a loose
    // sanity band — CI machines are noisy; the < 1.20 acceptance bar
    // (re-baselined 2026-08-08, see the `Supervision` doc) is judged on
    // the committed artifact, which is measured on quiet iron.
    let sup = &report.supervision;
    assert!(sup.probe_sites > 0, "supervision probe ran over no sites");
    assert_eq!(
        sup.quarantined_total,
        sup.quarantined_panic + sup.quarantined_deadline + sup.quarantined_budget,
        "quarantine reason counts do not sum to the total"
    );
    assert!(
        sup.quarantined_total > 0,
        "the poisoned probe must quarantine at least one site"
    );
    assert!(
        (sup.quarantined_total as usize) < sup.probe_sites,
        "the poisoned probe must not quarantine every site"
    );
    assert!(
        sup.supervised_seconds > 0.0 && sup.unsupervised_seconds > 0.0,
        "supervision race timings must be positive"
    );
    assert!(
        sup.overhead_ratio.is_finite() && sup.overhead_ratio > 0.0 && sup.overhead_ratio < 1.25,
        "supervision overhead_ratio out of the sanity band: {}",
        sup.overhead_ratio
    );

    // Headline fields are all-zero until `perf --headline` runs; once any
    // is set, all must be coherent.
    if report.orchestrator.headline_sites > 0 {
        assert!(
            report.orchestrator.headline_seconds > 0.0
                && report.orchestrator.headline_sites_per_s > 0.0,
            "headline row present but timings are zero"
        );
        assert!(
            report.orchestrator.headline_peak_bytes > 0,
            "headline row present but peak memory is zero"
        );
        // `headline_workers` is 0 only for rows carried from pre-/5
        // artifacts, whose worker count was never recorded; a row written
        // by this binary always knows it.
        assert!(
            report.orchestrator.headline_workers <= 4096,
            "headline_workers implausible: {}",
            report.orchestrator.headline_workers
        );
    }
    // Longitudinal section (schema /6): all-zero until `perf
    // --longitudinal` runs; once present, the lineage must have
    // reconstructed byte-identically and actually compressed. The ratio
    // grows ≈ (N+1)/2 with timeline length, so the ≥ 5x bar only applies
    // at ≥ 20 eras (the committed artifact runs 50).
    let lon = &report.longitudinal;
    if lon.eras > 0 {
        assert!(lon.sites_per_era > 0, "longitudinal row crawled no sites");
        assert!(
            lon.reconstruction_identical,
            "longitudinal lineage did not reconstruct byte-identically"
        );
        assert!(
            lon.delta_bytes > 0 && lon.full_bytes > lon.delta_bytes,
            "longitudinal lineage did not compress: {} delta vs {} full",
            lon.delta_bytes,
            lon.full_bytes
        );
        let ratio = lon.full_bytes as f64 / lon.delta_bytes as f64;
        assert!(
            (lon.compression_ratio - ratio).abs() < 0.01,
            "longitudinal.compression_ratio inconsistent: {} vs {ratio}",
            lon.compression_ratio
        );
        if lon.eras >= 20 {
            assert!(
                lon.compression_ratio >= 5.0,
                "longitudinal compression ratio {:.2} below the 5x bar at {} eras",
                lon.compression_ratio,
                lon.eras
            );
        }
        assert!(
            lon.diff_seconds.is_finite() && lon.diff_seconds >= 0.0,
            "longitudinal.diff_seconds must be nonnegative"
        );
    }
    println!("perf --check: {path} OK");
}
