//! Extension analysis: WebSocket usage cut by Alexa category (the §3.3
//! sample design makes this a natural deeper dive).
fn main() {
    let report = sockscope_bench::run_study_announced("category breakdown");
    println!("{}", report.categories.render());
}
