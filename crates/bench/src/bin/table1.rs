//! Regenerates **Table 1**: high-level statistics of the four crawls.
fn main() {
    let report = sockscope_bench::run_study_announced("Table 1");
    println!("{}", report.table1.render());
}
