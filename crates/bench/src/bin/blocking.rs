//! Regenerates the §4.2 post-hoc blocking analysis: ~5% of chains leading
//! to A&A sockets are blockable by the rule lists, vs ~27% of A&A chains
//! overall — the quantitative core of the WRB's impact.
fn main() {
    let report = sockscope_bench::run_study_announced("blocking analysis");
    let s = &report.textstats;
    println!("post-hoc rule-list analysis (EasyList + EasyPrivacy):");
    println!(
        "  chains leading to A&A sockets blockable: {:.1}%   (paper: ~5%)",
        s.pct_socket_chains_blocked
    );
    println!(
        "  all A&A resource chains blockable:        {:.1}%   (paper: ~27%)",
        s.pct_aa_chains_blocked
    );
    println!();
    println!("interpretation: the scripts that open A&A sockets are rarely on");
    println!("the lists themselves, so while the WRB was live, blockers had no");
    println!("interposition point at all for these flows.");
}
