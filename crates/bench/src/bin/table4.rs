//! Regenerates **Table 4**: top initiator/receiver pairs among A&A sockets.
fn main() {
    let report = sockscope_bench::run_study_announced("Table 4");
    println!("{}", report.table4.render());
    println!("(paper's top pairs: webspectator->realtime 1285, google->zopim 172, blogger->feedjit 158, ...; self-pairs total 36,056)");
}
