//! Regenerates **Table 3**: top-15 A&A WebSocket receivers by unique initiators.
fn main() {
    let report = sockscope_bench::run_study_announced("Table 3");
    println!("{}", report.table3.render());
    println!("(paper's top receivers: intercom 156/16, 33across 57/19, zopim 44/12, realtime 41/27, smartsupp 26/4, feedjit 25/10, inspectlet 25/6, pusher 22/8, ...)");
}
