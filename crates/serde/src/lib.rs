//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real serde cannot be fetched. This facade keeps the workspace's source
//! compatible — `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` work unchanged — while replacing
//! serde's generic serializer architecture with a single concrete data
//! model: every type converts to and from the JSON-shaped [`Value`] tree,
//! and `serde_json` (also vendored) renders that tree to text.
//!
//! Determinism note: map types serialize with **sorted keys** (including
//! `HashMap`), so two semantically equal values always produce
//! byte-identical JSON. The snapshot/determinism test suite relies on this.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model every serializable type maps onto.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers (kept separate so `u64` counters round-trip
    /// exactly).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Arr(Vec<Value>),
    /// Objects, as ordered key/value pairs (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned view (accepts any numeric variant that fits).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Signed view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// Float view (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` to a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, de::Error>;
}

/// Deserialization support: the error type and the helpers the derive
/// macro's generated code calls into.
pub mod de {
    use super::{Deserialize, Value};

    /// Deserialization / JSON-format error.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// Creates an error with a message.
        pub fn new(msg: impl Into<String>) -> Error {
            Error { msg: msg.into() }
        }
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// Expects an object, for struct deserialization.
    pub fn expect_obj<'a>(v: &'a Value, ctx: &str) -> Result<&'a [(String, Value)], Error> {
        match v {
            Value::Obj(entries) => Ok(entries),
            other => Err(Error::new(format!(
                "expected object for {ctx}, got {other:?}"
            ))),
        }
    }

    /// Expects an array of exactly `len` elements.
    pub fn expect_arr<'a>(v: &'a Value, len: usize, ctx: &str) -> Result<&'a [Value], Error> {
        match v {
            Value::Arr(items) if items.len() == len => Ok(items),
            other => Err(Error::new(format!(
                "expected {len}-element array for {ctx}, got {other:?}"
            ))),
        }
    }

    /// Deserializes one named field of a struct.
    pub fn field<T: Deserialize>(
        obj: &[(String, Value)],
        name: &str,
        ctx: &str,
    ) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error::new(format!("missing field `{name}` in {ctx}"))),
        }
    }

    /// Deserializes one positional element of a tuple.
    pub fn element<T: Deserialize>(arr: &[Value], idx: usize, ctx: &str) -> Result<T, Error> {
        T::from_value(&arr[idx]).map_err(|e| Error::new(format!("{ctx}[{idx}]: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Implementations for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, de::Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::new(format!("expected bool, got {v:?}")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, de::Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| de::Error::new(format!("expected unsigned int, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| de::Error::new("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, de::Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| de::Error::new(format!("expected int, got {v:?}")))?;
                <$t>::try_from(n).map_err(|_| de::Error::new("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, de::Error> {
        v.as_f64()
            .ok_or_else(|| de::Error::new(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, de::Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::new(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, de::Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], de::Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|items| de::Error::new(format!("expected {N} elements, got {}", items.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<($($name,)+), de::Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let arr = de::expect_arr(v, LEN, "tuple")?;
                Ok(($(de::element::<$name>(arr, $idx, "tuple")?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, de::Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(de::Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, de::Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output regardless of hash seed.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, de::Error> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(de::Error::new(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impls_roundtrip() {
        let map: BTreeMap<String, Vec<(u64, u64)>> = [("a".to_string(), vec![(1, 2), (3, 4)])]
            .into_iter()
            .collect();
        let v = map.to_value();
        let back = BTreeMap::<String, Vec<(u64, u64)>>::from_value(&v).unwrap();
        assert_eq!(map, back);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<Vec<u8>> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<Vec<u8>>::from_value(&Value::Null).unwrap(), None);
        let some = Some(vec![1u8, 2]);
        let v = some.to_value();
        assert_eq!(Option::<Vec<u8>>::from_value(&v).unwrap(), some);
    }

    #[test]
    fn arrays_roundtrip() {
        let arr = [1u64, 2, 3];
        let v = arr.to_value();
        assert_eq!(<[u64; 3]>::from_value(&v).unwrap(), arr);
        assert!(<[u64; 4]>::from_value(&v).is_err());
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        m.insert("z".to_string(), 1u32);
        m.insert("a".to_string(), 2u32);
        let Value::Obj(entries) = m.to_value() else {
            panic!("expected object")
        };
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[1].0, "z");
    }
}
