//! Post-hoc blocking analysis (§4.2).
//!
//! The paper asks: for the inclusion chains that lead to A&A sockets, would
//! EasyList+EasyPrivacy have blocked *any script along the chain*? If not,
//! the only way to stop the flow is to block the WebSocket itself — which
//! the WRB made impossible. They find only ~5% of socket chains would be
//! cut, versus ~27% of A&A chains overall (the paper's footnote notes this
//! post-hoc comparison can miss some load-time blocking).

use crate::tree::{InclusionTree, Node, NodeId, NodeKind};
use sockscope_filterlist::{Engine, RequestContext, ResourceType};
use sockscope_urlkit::Url;

/// Would any *script* ancestor of `node` (excluding the page itself) have
/// been blocked by `engine`? This mirrors the paper's "compare the rule
/// lists to our chains post-hoc" procedure.
pub fn chain_blocked(tree: &InclusionTree, node: NodeId, engine: &Engine) -> bool {
    let Some(page) = Url::parse(&tree.page_url).ok() else {
        return false;
    };
    tree.chain(node)
        .iter()
        .any(|n| node_blocked(n, &page, engine))
}

fn node_blocked(node: &Node, page: &Url, engine: &Engine) -> bool {
    let rtype = match node.kind {
        NodeKind::Script => ResourceType::Script,
        NodeKind::Image => ResourceType::Image,
        NodeKind::Xhr => ResourceType::Xhr,
        NodeKind::WebSocket => return false, // sockets themselves are the WRB question
        _ => return false,
    };
    let Ok(url) = Url::parse(&node.url) else {
        return false;
    };
    engine.blocks(&RequestContext {
        url: &url,
        page,
        resource_type: rtype,
    })
}

/// Chain-level blocking statistics over a set of trees.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockingStats {
    /// Chains leading to A&A sockets that the lists would cut.
    pub socket_chains_blocked: usize,
    /// Total chains leading to A&A sockets.
    pub socket_chains_total: usize,
    /// All chains ending at an A&A-domain resource that would be cut.
    pub aa_chains_blocked: usize,
    /// Total chains ending at an A&A-domain resource.
    pub aa_chains_total: usize,
}

impl BlockingStats {
    /// Fraction of A&A-socket chains blocked (the paper's ~5%).
    pub fn socket_fraction(&self) -> f64 {
        if self.socket_chains_total == 0 {
            0.0
        } else {
            self.socket_chains_blocked as f64 / self.socket_chains_total as f64
        }
    }

    /// Fraction of all A&A chains blocked (the paper's ~27%).
    pub fn aa_fraction(&self) -> f64 {
        if self.aa_chains_total == 0 {
            0.0
        } else {
            self.aa_chains_blocked as f64 / self.aa_chains_total as f64
        }
    }
}

/// Accumulates [`BlockingStats`] across trees, given the A&A set.
pub fn analyze_blocking(
    trees: &[InclusionTree],
    aa: &sockscope_filterlist::AaDomainSet,
    engine: &Engine,
) -> BlockingStats {
    let mut stats = BlockingStats::default();
    for tree in trees {
        for node in tree.nodes() {
            let is_aa_endpoint = aa.is_aa_host(&node.host);
            match node.kind {
                NodeKind::WebSocket => {
                    // Chains leading to sockets where either party is A&A.
                    let atts = crate::attribution::attribute_sockets(tree, aa);
                    let att = atts
                        .iter()
                        .find(|a| a.socket_url == node.url)
                        .expect("socket attributed");
                    if att.is_aa_socket() {
                        stats.socket_chains_total += 1;
                        if chain_blocked(tree, node.id, engine) {
                            stats.socket_chains_blocked += 1;
                        }
                    }
                }
                NodeKind::Script | NodeKind::Image | NodeKind::Xhr if is_aa_endpoint => {
                    stats.aa_chains_total += 1;
                    if chain_blocked(tree, node.id, engine) {
                        stats.aa_chains_blocked += 1;
                    }
                }
                _ => {}
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sockscope_browser::{CdpEvent, FrameId, Initiator, RequestId, ScriptId};
    use sockscope_filterlist::AaDomainSet;

    fn tree() -> InclusionTree {
        use CdpEvent::*;
        let events = vec![
            // chain 1: blocked-listable script → socket
            ScriptParsed {
                script_id: ScriptId(1),
                url: "http://listed-tracker.example/t.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            WebSocketCreated {
                request_id: RequestId(1),
                url: "wss://listed-tracker.example/ws".into(),
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
            // chain 2: unlisted script → A&A socket (the WRB-problem case)
            ScriptParsed {
                script_id: ScriptId(2),
                url: "http://innocuous.example/w.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            WebSocketCreated {
                request_id: RequestId(2),
                url: "wss://sneaky-ads.example/ws".into(),
                initiator: Initiator::Script(ScriptId(2)),
                frame_id: FrameId(0),
            },
            // an ordinary A&A image chain
            RequestWillBeSent {
                request_id: RequestId(3),
                url: "http://listed-tracker.example/pixel.gif".into(),
                resource_type: sockscope_browser::ResourceKind::Image,
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
        ];
        InclusionTree::build("http://pub.example/", &events)
    }

    #[test]
    fn chain_blocking_detects_listed_scripts() {
        let (engine, _) = Engine::parse("||listed-tracker.example^");
        let tree = tree();
        let sockets: Vec<_> = tree.websockets().collect();
        assert!(chain_blocked(&tree, sockets[0].id, &engine));
        assert!(!chain_blocked(&tree, sockets[1].id, &engine));
    }

    #[test]
    fn stats_separate_socket_and_general_chains() {
        let (engine, _) = Engine::parse("||listed-tracker.example^");
        let aa = AaDomainSet::from_domains(["listed-tracker.example", "sneaky-ads.example"]);
        let stats = analyze_blocking(&[tree()], &aa, &engine);
        assert_eq!(stats.socket_chains_total, 2);
        assert_eq!(stats.socket_chains_blocked, 1);
        assert_eq!(stats.aa_chains_total, 2); // t.js + pixel.gif
        assert_eq!(stats.aa_chains_blocked, 2);
        assert!((stats.socket_fraction() - 0.5).abs() < 1e-9);
        assert!((stats.aa_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input_yields_zero_fractions() {
        let stats = BlockingStats::default();
        assert_eq!(stats.socket_fraction(), 0.0);
        assert_eq!(stats.aa_fraction(), 0.0);
    }
}
