//! # sockscope-inclusion
//!
//! Inclusion-tree construction from CDP event streams — the heart of the
//! paper's methodology (§3.1, Figure 2).
//!
//! A DOM tree records *syntax*: three `<script>` tags side by side. An
//! **inclusion tree** records *provenance*: which running script caused each
//! resource to load. The difference matters because `Referer` headers carry
//! the first-party domain even for requests made by third-party code, and
//! the DOM cannot express "script A inserted script B which opened socket
//! C". The paper (following Arshad et al.) rebuilds provenance from CDP
//! events: `scriptParsed` initiators, `requestWillBeSent` initiators, frame
//! navigation, and the six WebSocket lifecycle events.
//!
//! This crate consumes the event streams produced by `sockscope-browser`
//! and yields [`InclusionTree`]s; the attribution helpers implement §3.2's
//! A&A-socket detection ("descend the branch of the inclusion tree that
//! includes the socket…") and §4.2's post-hoc blocking analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod blocking;
pub mod tree;

pub use attribution::SocketAttribution;
pub use tree::{InclusionTree, Node, NodeId, NodeKind, TreeBuilder, WsTranscript};
