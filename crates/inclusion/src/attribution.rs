//! WebSocket attribution: who initiated a socket, who receives it, and is
//! either party A&A (§3.2, §4.2).

use crate::tree::{InclusionTree, Node, NodeKind};
use sockscope_filterlist::AaDomainSet;
use sockscope_urlkit::{second_level_domain, Url};

/// Attribution facts for one WebSocket node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketAttribution {
    /// URL of the socket endpoint.
    pub socket_url: String,
    /// Second-level domain of the endpoint (the *receiver* in the paper's
    /// tables).
    pub receiver: String,
    /// Second-level domain of the nearest ancestor script — the *initiator*
    /// in Tables 2 and 4. Falls back to the page domain for sockets opened
    /// by inline/first-party code.
    pub initiator: String,
    /// Second-level domains of every ancestor resource, root → socket.
    pub chain_domains: Vec<String>,
    /// Socket contacted a third-party domain (cross-origin, §4.1's >90%).
    pub cross_origin: bool,
    /// Some ancestor resource's domain is in `D'` — "A&A-initiated".
    pub aa_initiated: bool,
    /// The receiver's domain is in `D'` — "A&A-received".
    pub aa_received: bool,
}

impl SocketAttribution {
    /// "A&A socket" as in Table 4: at least one endpoint party is A&A.
    pub fn is_aa_socket(&self) -> bool {
        self.aa_initiated || self.aa_received
    }
}

/// Computes attribution for every socket in a tree.
///
/// `aa` is the labeled A&A domain set `D'` (with CDN overrides). The
/// initiator is the nearest ancestor **script** node; `aa_initiated`
/// descends the whole branch, exactly as §3.2 specifies: *"If the domains
/// of any of the parent resources are present in D′, we consider the socket
/// to be included by an A&A resource."*
pub fn attribute_sockets(tree: &InclusionTree, aa: &AaDomainSet) -> Vec<SocketAttribution> {
    tree.websockets()
        .map(|socket| attribute_one(tree, socket, aa))
        .collect()
}

fn attribute_one(tree: &InclusionTree, socket: &Node, aa: &AaDomainSet) -> SocketAttribution {
    let chain = tree.chain(socket.id);
    let receiver = aa.aggregation_key(&socket.host);
    // Nearest ancestor script; else the page.
    let initiator_host = chain
        .iter()
        .rev()
        .skip(1) // the socket itself
        .find(|n| n.kind == NodeKind::Script)
        .map(|n| n.host.clone())
        .unwrap_or_else(|| tree.root().host.clone());
    let initiator = aa.aggregation_key(&initiator_host);
    let chain_domains: Vec<String> = chain.iter().map(|n| aa.aggregation_key(&n.host)).collect();
    let cross_origin = {
        let page = Url::parse(&tree.page_url).ok();
        let sock = Url::parse(&socket.url).ok();
        match (page, sock) {
            (Some(p), Some(s)) => sockscope_urlkit::origin::is_third_party(&p, &s),
            _ => second_level_domain(&tree.root().host) != second_level_domain(&socket.host),
        }
    };
    // Ancestors only (exclude the socket's own endpoint domain).
    let aa_initiated = chain
        .iter()
        .take(chain.len().saturating_sub(1))
        .any(|n| aa.is_aa_host(&n.host));
    let aa_received = aa.is_aa_host(&socket.host);
    SocketAttribution {
        socket_url: socket.url.clone(),
        receiver,
        initiator,
        chain_domains,
        cross_origin,
        aa_initiated,
        aa_received,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sockscope_browser::{CdpEvent, FrameId, Initiator, RequestId, ScriptId};

    fn tree_with_chain() -> InclusionTree {
        use CdpEvent::*;
        let events = vec![
            ScriptParsed {
                script_id: ScriptId(1),
                url: "http://cdn.pub.example/app.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            ScriptParsed {
                script_id: ScriptId(2),
                url: "http://static.webspectator.example/ws.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Script(ScriptId(1)),
            },
            WebSocketCreated {
                request_id: RequestId(1),
                url: "wss://rt.realtime.example/stream".into(),
                initiator: Initiator::Script(ScriptId(2)),
                frame_id: FrameId(0),
            },
        ];
        InclusionTree::build("http://pub.example/", &events)
    }

    #[test]
    fn initiator_is_nearest_script_sld() {
        let aa = AaDomainSet::from_domains(["webspectator.example", "realtime.example"]);
        let atts = attribute_sockets(&tree_with_chain(), &aa);
        assert_eq!(atts.len(), 1);
        let a = &atts[0];
        assert_eq!(a.initiator, "webspectator.example");
        assert_eq!(a.receiver, "realtime.example");
        assert!(a.aa_initiated);
        assert!(a.aa_received);
        assert!(a.cross_origin);
        assert!(a.is_aa_socket());
    }

    #[test]
    fn aa_detection_descends_whole_branch() {
        // Only the MIDDLE of the chain is A&A; the socket must still count
        // as A&A-initiated.
        let aa = AaDomainSet::from_domains(["webspectator.example"]);
        let atts = attribute_sockets(&tree_with_chain(), &aa);
        assert!(atts[0].aa_initiated);
        assert!(!atts[0].aa_received);
        assert!(atts[0].is_aa_socket());
    }

    #[test]
    fn non_aa_socket() {
        let aa = AaDomainSet::from_domains(["unrelated.example"]);
        let atts = attribute_sockets(&tree_with_chain(), &aa);
        assert!(!atts[0].aa_initiated);
        assert!(!atts[0].aa_received);
        assert!(!atts[0].is_aa_socket());
    }

    #[test]
    fn inline_script_socket_attributes_to_page() {
        use CdpEvent::*;
        let events = vec![
            ScriptParsed {
                script_id: ScriptId(1),
                url: "http://pub.example/#inline-0".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            WebSocketCreated {
                request_id: RequestId(1),
                url: "wss://chat.intercom.example/ws".into(),
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
        ];
        let tree = InclusionTree::build("http://pub.example/", &events);
        let aa = AaDomainSet::from_domains(["intercom.example"]);
        let atts = attribute_sockets(&tree, &aa);
        // First-party page initiates, A&A receiver — the "benign initiator,
        // A&A receiver" pattern that dominates Table 3.
        assert_eq!(atts[0].initiator, "pub.example");
        assert!(!atts[0].aa_initiated);
        assert!(atts[0].aa_received);
    }

    #[test]
    fn same_site_socket_not_cross_origin() {
        use CdpEvent::*;
        let events = vec![
            ScriptParsed {
                script_id: ScriptId(1),
                url: "http://pub.example/a.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            WebSocketCreated {
                request_id: RequestId(1),
                url: "ws://ws.pub.example/live".into(),
                initiator: Initiator::Script(ScriptId(1)),
                frame_id: FrameId(0),
            },
        ];
        let tree = InclusionTree::build("http://pub.example/", &events);
        let aa = AaDomainSet::from_domains::<[&str; 0], &str>([]);
        let atts = attribute_sockets(&tree, &aa);
        assert!(!atts[0].cross_origin);
    }

    #[test]
    fn cdn_override_reattributes_receiver() {
        use CdpEvent::*;
        let events = vec![WebSocketCreated {
            request_id: RequestId(1),
            url: "wss://d10lpsik1i8c69.cloudfront.net/collect".into(),
            initiator: Initiator::Parser(FrameId(0)),
            frame_id: FrameId(0),
        }];
        let tree = InclusionTree::build("http://pub.example/", &events);
        let mut aa = AaDomainSet::from_domains(["luckyorange.example"]);
        aa.add_cdn_override("d10lpsik1i8c69.cloudfront.net", "luckyorange.example");
        let atts = attribute_sockets(&tree, &aa);
        assert_eq!(atts[0].receiver, "luckyorange.example");
        assert!(atts[0].aa_received);
    }
}
