//! The inclusion-tree data structure and its builder.
//!
//! Trees can be built two ways with identical results: batch
//! ([`InclusionTree::build`] over a materialized event slice) or streaming
//! ([`TreeBuilder`] fed one event at a time as the browser emits them).
//! The batch entry point is itself implemented as a streaming build, so
//! the two can never diverge.

use serde::{Deserialize, Serialize};
use sockscope_browser::{
    CdpEvent, FrameId, FramePayload, Initiator, RequestId, ResourceKind, ScriptId, VisitSink,
};
use sockscope_intern::HostCache;
use std::collections::HashMap;

/// Index of a node within its tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// The top-level page document.
    Page,
    /// An iframe document.
    Frame,
    /// A script (inline or remote).
    Script,
    /// An image resource.
    Image,
    /// An XHR.
    Xhr,
    /// A WebSocket connection — always a child of the script that opened it
    /// (Figure 2's `adnet/data.ws` under `ads/script.js`).
    WebSocket,
    /// A request cancelled by a blocking extension (only present in
    /// blocker-enabled crawls; the ablation harness uses these).
    Blocked,
}

/// A recorded WebSocket payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadRecord {
    /// Text frame contents.
    Text(String),
    /// Binary frame contents.
    Binary(Vec<u8>),
}

impl PayloadRecord {
    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PayloadRecord::Text(s) => Some(s),
            PayloadRecord::Binary(_) => None,
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        match self {
            PayloadRecord::Text(s) => s.len(),
            PayloadRecord::Binary(b) => b.len(),
        }
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn record(p: &FramePayload) -> PayloadRecord {
    match p {
        FramePayload::Text(s) => PayloadRecord::Text(s.as_ref().to_owned()),
        FramePayload::Base64(_) => PayloadRecord::Binary(p.to_bytes().into_owned()),
    }
}

/// Everything observed on one WebSocket.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WsTranscript {
    /// Raw handshake request (headers carry UA/Cookie/Origin).
    pub handshake_request: String,
    /// Upgrade status.
    pub status: u16,
    /// Client→server payloads in order.
    pub sent: Vec<PayloadRecord>,
    /// Server→client payloads in order.
    pub received: Vec<PayloadRecord>,
    /// Whether the close event was observed.
    pub closed: bool,
    /// Chrome-style error text when the socket failed (fault injection or
    /// a real protocol violation); `None` for clean sessions.
    pub error: Option<String>,
}

/// One node of an inclusion tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// This node's id.
    pub id: NodeId,
    /// Resource URL.
    pub url: String,
    /// Hostname extracted from `url` (empty if unparseable).
    pub host: String,
    /// Node kind.
    pub kind: NodeKind,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in creation order.
    pub children: Vec<NodeId>,
    /// WebSocket transcript, for [`NodeKind::WebSocket`] nodes.
    pub ws: Option<WsTranscript>,
    /// HTTP response body, for HTTP-fetched nodes (used by content analysis
    /// of HTTP/S, Table 5's comparison columns).
    pub http_body: Option<Vec<u8>>,
    /// Ground-truth sent items for HTTP nodes (tests only; the analyzer
    /// works from the URL/body text).
    pub http_sent_ground_truth: Vec<sockscope_webmodel::SentItem>,
}

/// An inclusion tree for one page visit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusionTree {
    /// The visited page URL.
    pub page_url: String,
    nodes: Vec<Node>,
}

impl InclusionTree {
    /// Builds the tree from a visit's CDP event stream.
    ///
    /// The builder mirrors the paper's recipe: `scriptParsed` events hang
    /// scripts under their initiator, `requestWillBeSent` hangs resources
    /// under theirs, `frameNavigated` tracks iframes, and the WebSocket
    /// events make each socket "a child node of the JavaScript node
    /// responsible for initiating" it (§3.2).
    pub fn build(page_url: &str, events: &[CdpEvent]) -> InclusionTree {
        let mut b = TreeBuilder::new(page_url);
        for ev in events {
            b.push(ev);
        }
        b.finish()
    }

    /// The root (page) node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// All nodes in creation order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// All WebSocket nodes.
    pub fn websockets(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.kind == NodeKind::WebSocket)
    }

    /// Path from the root to `id`, inclusive.
    pub fn chain(&self, id: NodeId) -> Vec<&Node> {
        let mut rev = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let n = &self.nodes[c.0];
            rev.push(n);
            cur = n.parent;
        }
        rev.reverse();
        rev
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.chain(id).len() - 1
    }

    /// Renders an ASCII sketch of the tree (the Figure 2 example binary
    /// prints this).
    pub fn ascii(&self) -> String {
        let mut out = String::new();
        self.ascii_node(NodeId(0), 0, &mut out);
        out
    }

    fn ascii_node(&self, id: NodeId, depth: usize, out: &mut String) {
        let n = &self.nodes[id.0];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let kind = match n.kind {
            NodeKind::Page => "page",
            NodeKind::Frame => "frame",
            NodeKind::Script => "script",
            NodeKind::Image => "image",
            NodeKind::Xhr => "xhr",
            NodeKind::WebSocket => "websocket",
            NodeKind::Blocked => "BLOCKED",
        };
        out.push_str(&format!("[{kind}] {}\n", n.url));
        for &c in &n.children {
            self.ascii_node(c, depth + 1, out);
        }
    }

    /// Tree invariants, checked by tests and property tests: exactly one
    /// root, parent/child pointers consistent, acyclic by construction.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty tree".into());
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.id.0 != i {
                return Err(format!("node {i} has mismatched id {:?}", n.id));
            }
            match n.parent {
                None if i != 0 => return Err(format!("non-root node {i} has no parent")),
                Some(p) => {
                    if p.0 >= i {
                        return Err(format!("node {i} has forward parent {}", p.0));
                    }
                    if !self.nodes[p.0].children.contains(&n.id) {
                        return Err(format!("parent {} does not list child {i}", p.0));
                    }
                }
                None => {}
            }
            for &c in &n.children {
                if self.nodes[c.0].parent != Some(n.id) {
                    return Err(format!("child {} does not point back to {i}", c.0));
                }
            }
            if (n.kind == NodeKind::WebSocket) != n.ws.is_some() {
                return Err(format!("node {i}: ws transcript/kind mismatch"));
            }
        }
        Ok(())
    }
}

/// Incremental inclusion-tree builder: the streaming counterpart of
/// [`InclusionTree::build`].
///
/// Feed it CDP events one at a time with [`TreeBuilder::push`] (or through
/// its [`VisitSink`] impl, straight off the browser's event loop), then
/// [`TreeBuilder::finish`] the tree. Node ids, ordering, and contents are
/// identical to a batch build over the same events — the batch entry point
/// is implemented on top of this type.
///
/// Hostnames are derived through a per-visit [`HostCache`] arena, so a page
/// that references the same origin thousands of times parses each distinct
/// URL once.
pub struct TreeBuilder {
    page_url: String,
    nodes: Vec<Node>,
    by_script: HashMap<ScriptId, NodeId>,
    by_frame: HashMap<FrameId, NodeId>,
    by_request: HashMap<RequestId, NodeId>,
    /// Frame nodes created from subframe Document requests, waiting for
    /// their `frameNavigated` to bind the frame id (keyed by URL).
    pending_docs: HashMap<String, NodeId>,
    /// Per-visit URL → host memo (symbol arena; dropped with the builder).
    hosts: HostCache,
}

impl TreeBuilder {
    /// Starts a tree for one page visit. The root node (the page itself,
    /// frame 0) is created eagerly so degenerate streams still work.
    pub fn new(page_url: &str) -> TreeBuilder {
        let mut b = TreeBuilder {
            page_url: page_url.to_string(),
            nodes: Vec::new(),
            by_script: HashMap::new(),
            by_frame: HashMap::new(),
            by_request: HashMap::new(),
            pending_docs: HashMap::new(),
            hosts: HostCache::new(),
        };
        let host = b.hosts.host(page_url).to_string();
        let root = b.push_node(Node {
            id: NodeId(0),
            url: page_url.to_string(),
            host,
            kind: NodeKind::Page,
            parent: None,
            children: Vec::new(),
            ws: None,
            http_body: None,
            http_sent_ground_truth: Vec::new(),
        });
        b.by_frame.insert(FrameId(0), root);
        b
    }

    /// Consumes the builder, yielding the finished tree.
    pub fn finish(self) -> InclusionTree {
        InclusionTree {
            page_url: self.page_url,
            nodes: self.nodes,
        }
    }

    /// Number of nodes built so far (≥ 1: the root always exists).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when only the root exists. Named for clippy symmetry with
    /// [`TreeBuilder::len`]; a builder is never zero-node.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The node a network request id resolved to, if any. Fused consumers
    /// use this to attach side-channel state (eager classifications) to the
    /// node a payload event will land on.
    pub fn node_for_request(&self, request_id: RequestId) -> Option<NodeId> {
        self.by_request.get(&request_id).copied()
    }

    /// Borrows a node built so far.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    fn push_node(&mut self, mut node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        node.id = id;
        if let Some(p) = node.parent {
            self.nodes[p.0].children.push(id);
        }
        self.nodes.push(node);
        id
    }

    fn parent_of(&self, initiator: Initiator, root: NodeId) -> NodeId {
        match initiator {
            Initiator::Parser(frame) => self.by_frame.get(&frame).copied().unwrap_or(root),
            Initiator::Script(sid) => self.by_script.get(&sid).copied().unwrap_or(root),
        }
    }

    fn new_node(&mut self, url: &str, kind: NodeKind, parent: NodeId) -> NodeId {
        let host = self.hosts.host(url).to_string();
        self.push_node(Node {
            id: NodeId(0),
            url: url.to_string(),
            host,
            kind,
            parent: Some(parent),
            children: Vec::new(),
            ws: None,
            http_body: None,
            http_sent_ground_truth: Vec::new(),
        })
    }

    /// Applies one CDP event to the tree under construction.
    pub fn push(&mut self, ev: &CdpEvent) {
        let root = NodeId(0);
        match ev {
            CdpEvent::FrameNavigated {
                frame_id,
                parent_frame_id,
                url,
            } => {
                if *frame_id == FrameId(0) {
                    return; // root created eagerly
                }
                // Prefer the Frame node created from the document request
                // (it carries the true initiator — a script for dynamically
                // injected iframes); fall back to frame-parent provenance
                // for streams without document requests.
                if let Some(id) = self.pending_docs.remove(url.as_ref()) {
                    self.by_frame.insert(*frame_id, id);
                    return;
                }
                let parent = parent_frame_id
                    .and_then(|p| self.by_frame.get(&p).copied())
                    .unwrap_or(root);
                let id = self.new_node(url, NodeKind::Frame, parent);
                self.by_frame.insert(*frame_id, id);
            }
            CdpEvent::ScriptParsed {
                script_id,
                url,
                initiator,
                ..
            } => {
                let parent = self.parent_of(*initiator, root);
                let id = self.new_node(url, NodeKind::Script, parent);
                self.by_script.insert(*script_id, id);
            }
            CdpEvent::RequestWillBeSent {
                request_id,
                url,
                resource_type,
                initiator,
                frame_id,
            } => {
                let kind = match resource_type {
                    ResourceKind::Image => NodeKind::Image,
                    ResourceKind::Xhr => NodeKind::Xhr,
                    ResourceKind::Document => {
                        // Subframe documents become Frame nodes hung under
                        // their true initiator; the main document (frame 0)
                        // is the root itself.
                        if *frame_id == FrameId(0) {
                            return;
                        }
                        let parent = self.parent_of(*initiator, root);
                        let id = self.new_node(url, NodeKind::Frame, parent);
                        self.pending_docs.insert(url.as_ref().to_owned(), id);
                        self.by_request.insert(*request_id, id);
                        return;
                    }
                    // Script requests become Script nodes via scriptParsed;
                    // WebSocket handshakes via webSocketCreated.
                    ResourceKind::Script | ResourceKind::WebSocket => return,
                };
                let parent = self.parent_of(*initiator, root);
                let id = self.new_node(url, kind, parent);
                self.by_request.insert(*request_id, id);
            }
            CdpEvent::ResponseReceived {
                request_id,
                body,
                sent_ground_truth,
                ..
            } => {
                if let Some(&id) = self.by_request.get(request_id) {
                    self.nodes[id.0].http_body = Some(body.to_vec());
                    self.nodes[id.0].http_sent_ground_truth = sent_ground_truth.to_vec();
                }
            }
            CdpEvent::WebSocketCreated {
                request_id,
                url,
                initiator,
                ..
            } => {
                let parent = self.parent_of(*initiator, root);
                let id = self.new_node(url, NodeKind::WebSocket, parent);
                self.nodes[id.0].ws = Some(WsTranscript::default());
                self.by_request.insert(*request_id, id);
            }
            CdpEvent::WebSocketWillSendHandshakeRequest {
                request_id,
                request,
            } => {
                if let Some(ws) = self.ws_mut(request_id) {
                    ws.handshake_request = String::from_utf8_lossy(request).to_string();
                }
            }
            CdpEvent::WebSocketHandshakeResponseReceived {
                request_id, status, ..
            } => {
                if let Some(ws) = self.ws_mut(request_id) {
                    ws.status = *status;
                }
            }
            CdpEvent::WebSocketFrameSent {
                request_id,
                payload,
            } => {
                if let Some(ws) = self.ws_mut(request_id) {
                    ws.sent.push(record(payload));
                }
            }
            CdpEvent::WebSocketFrameReceived {
                request_id,
                payload,
            } => {
                if let Some(ws) = self.ws_mut(request_id) {
                    ws.received.push(record(payload));
                }
            }
            CdpEvent::WebSocketFrameError {
                request_id,
                error_text,
            } => {
                if let Some(ws) = self.ws_mut(request_id) {
                    ws.error = Some(error_text.as_ref().to_owned());
                }
            }
            CdpEvent::WebSocketClosed { request_id } => {
                if let Some(ws) = self.ws_mut(request_id) {
                    ws.closed = true;
                }
            }
            CdpEvent::LoadingFailed { .. } => {
                // The failed fetch's node already exists (from its
                // requestWillBeSent) with `http_body: None` — which is the
                // "no response observed" state content analysis expects.
            }
            CdpEvent::RequestBlockedByExtension { url, initiator, .. } => {
                let parent = self.parent_of(*initiator, root);
                self.new_node(url, NodeKind::Blocked, parent);
            }
        }
    }

    fn ws_mut(&mut self, request_id: &RequestId) -> Option<&mut WsTranscript> {
        let id = self.by_request.get(request_id)?;
        self.nodes[id.0].ws.as_mut()
    }
}

impl VisitSink for TreeBuilder {
    fn on_event(&mut self, event: CdpEvent) {
        self.push(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built event stream reproducing Figure 2 of the paper.
    fn figure2_events() -> Vec<CdpEvent<'static>> {
        use CdpEvent::*;
        vec![
            FrameNavigated {
                frame_id: FrameId(0),
                parent_frame_id: None,
                url: "http://pub.example/index.html".into(),
            },
            ScriptParsed {
                script_id: ScriptId(1),
                url: "http://pub.example/script.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            ScriptParsed {
                script_id: ScriptId(2),
                url: "http://ads.example/script.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
            // ads/script.js dynamically includes ads/script2.js and an image
            ScriptParsed {
                script_id: ScriptId(3),
                url: "http://ads.example/script2.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Script(ScriptId(2)),
            },
            RequestWillBeSent {
                request_id: RequestId(1),
                url: "http://ads.example/image.img".into(),
                resource_type: ResourceKind::Image,
                initiator: Initiator::Script(ScriptId(2)),
                frame_id: FrameId(0),
            },
            // script2 opens the socket
            WebSocketCreated {
                request_id: RequestId(2),
                url: "ws://adnet.example/data.ws".into(),
                initiator: Initiator::Script(ScriptId(3)),
                frame_id: FrameId(0),
            },
            WebSocketFrameSent {
                request_id: RequestId(2),
                payload: FramePayload::Text("cookie=uid42".into()),
            },
            WebSocketFrameReceived {
                request_id: RequestId(2),
                payload: FramePayload::Text("{\"ok\":true}".into()),
            },
            WebSocketClosed {
                request_id: RequestId(2),
            },
            ScriptParsed {
                script_id: ScriptId(4),
                url: "http://tracker.example/script.js".into(),
                frame_id: FrameId(0),
                initiator: Initiator::Parser(FrameId(0)),
            },
        ]
    }

    #[test]
    fn figure2_tree_shape() {
        let tree = InclusionTree::build("http://pub.example/index.html", &figure2_events());
        tree.check_invariants().unwrap();
        assert_eq!(tree.len(), 7); // page + 4 scripts + image + socket
                                   // The socket hangs under ads/script2.js, which hangs under
                                   // ads/script.js, which hangs under the page — Figure 2 exactly.
        let socket = tree.websockets().next().unwrap();
        let chain: Vec<&str> = tree
            .chain(socket.id)
            .iter()
            .map(|n| n.url.as_str())
            .collect();
        assert_eq!(
            chain,
            vec![
                "http://pub.example/index.html",
                "http://ads.example/script.js",
                "http://ads.example/script2.js",
                "ws://adnet.example/data.ws",
            ]
        );
        assert_eq!(tree.depth(socket.id), 3);
    }

    #[test]
    fn socket_transcript_recorded() {
        let tree = InclusionTree::build("http://pub.example/index.html", &figure2_events());
        let socket = tree.websockets().next().unwrap();
        let ws = socket.ws.as_ref().unwrap();
        assert_eq!(ws.sent.len(), 1);
        assert_eq!(ws.sent[0].as_text(), Some("cookie=uid42"));
        assert_eq!(ws.received.len(), 1);
        assert!(ws.closed);
    }

    #[test]
    fn dom_vs_inclusion_contrast() {
        // The DOM (Figure 2 left) shows 3 sibling scripts; the inclusion
        // tree (right) shows the nested reality.
        let tree = InclusionTree::build("http://pub.example/index.html", &figure2_events());
        let root_children = &tree.root().children;
        assert_eq!(root_children.len(), 3); // pub, ads, tracker scripts
        let dom = sockscope_webmodel::dom::figure2_dom();
        assert_eq!(dom.resource_attributes().len(), 3);
        // But the ads script has two children in the inclusion tree.
        let ads = tree
            .nodes()
            .iter()
            .find(|n| n.url == "http://ads.example/script.js")
            .unwrap();
        assert_eq!(ads.children.len(), 2);
    }

    #[test]
    fn unknown_initiators_attach_to_root() {
        let events = vec![CdpEvent::WebSocketCreated {
            request_id: RequestId(9),
            url: "ws://x.example/s".into(),
            initiator: Initiator::Script(ScriptId(999)),
            frame_id: FrameId(0),
        }];
        let tree = InclusionTree::build("http://p.example/", &events);
        tree.check_invariants().unwrap();
        let socket = tree.websockets().next().unwrap();
        assert_eq!(socket.parent, Some(NodeId(0)));
    }

    #[test]
    fn frames_nest() {
        use CdpEvent::*;
        let events = vec![
            FrameNavigated {
                frame_id: FrameId(1),
                parent_frame_id: Some(FrameId(0)),
                url: "http://embed.example/widget".into(),
            },
            ScriptParsed {
                script_id: ScriptId(1),
                url: "http://embed.example/w.js".into(),
                frame_id: FrameId(1),
                initiator: Initiator::Parser(FrameId(1)),
            },
        ];
        let tree = InclusionTree::build("http://p.example/", &events);
        tree.check_invariants().unwrap();
        let script = tree
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Script)
            .unwrap();
        let chain: Vec<NodeKind> = tree.chain(script.id).iter().map(|n| n.kind).collect();
        assert_eq!(
            chain,
            vec![NodeKind::Page, NodeKind::Frame, NodeKind::Script]
        );
    }

    #[test]
    fn blocked_nodes_recorded() {
        let events = vec![CdpEvent::RequestBlockedByExtension {
            url: "ws://adnet.example/s".into(),
            resource_type: ResourceKind::WebSocket,
            initiator: Initiator::Parser(FrameId(0)),
        }];
        let tree = InclusionTree::build("http://p.example/", &events);
        assert_eq!(
            tree.nodes()
                .iter()
                .filter(|n| n.kind == NodeKind::Blocked)
                .count(),
            1
        );
    }

    #[test]
    fn faulted_socket_transcript_carries_error() {
        use CdpEvent::*;
        let events = vec![
            WebSocketCreated {
                request_id: RequestId(4),
                url: "ws://adnet.example/s".into(),
                initiator: Initiator::Parser(FrameId(0)),
                frame_id: FrameId(0),
            },
            WebSocketFrameError {
                request_id: RequestId(4),
                error_text: "net::ERR_CONNECTION_REFUSED".into(),
            },
            WebSocketClosed {
                request_id: RequestId(4),
            },
        ];
        let tree = InclusionTree::build("http://p.example/", &events);
        tree.check_invariants().unwrap();
        let socket = tree.websockets().next().unwrap();
        let ws = socket.ws.as_ref().unwrap();
        assert_eq!(ws.error.as_deref(), Some("net::ERR_CONNECTION_REFUSED"));
        assert_eq!(ws.status, 0); // no handshake response arrived
        assert!(ws.closed);
    }

    #[test]
    fn loading_failed_leaves_node_bodyless() {
        use CdpEvent::*;
        let events = vec![
            RequestWillBeSent {
                request_id: RequestId(1),
                url: "http://cdn.example/pixel.img".into(),
                resource_type: ResourceKind::Image,
                initiator: Initiator::Parser(FrameId(0)),
                frame_id: FrameId(0),
            },
            LoadingFailed {
                request_id: RequestId(1),
                url: "http://cdn.example/pixel.img".into(),
                resource_type: ResourceKind::Image,
                error_text: "net::ERR_CONNECTION_REFUSED".into(),
            },
        ];
        let tree = InclusionTree::build("http://p.example/", &events);
        tree.check_invariants().unwrap();
        let img = tree
            .nodes()
            .iter()
            .find(|n| n.kind == NodeKind::Image)
            .unwrap();
        assert!(img.http_body.is_none());
    }

    #[test]
    fn ascii_rendering_mentions_all_nodes() {
        let tree = InclusionTree::build("http://pub.example/index.html", &figure2_events());
        let art = tree.ascii();
        assert!(art.contains("[page] http://pub.example/index.html"));
        assert!(art.contains("[websocket] ws://adnet.example/data.ws"));
        assert_eq!(art.lines().count(), tree.len());
    }

    #[test]
    fn serde_roundtrip() {
        let tree = InclusionTree::build("http://pub.example/index.html", &figure2_events());
        let json = serde_json::to_string(&tree).unwrap();
        let back: InclusionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
    }
}
