//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest's API this workspace uses — the
//! `proptest!` macro, `any::<T>()`, integer-range / regex-string / tuple /
//! collection strategies, `prop_map`, `sample::{Index, select}`, and
//! `option::of` — on top of a deterministic splitmix64 generator.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case panics with the case's seed in the test
//!   name context, and reruns are deterministic, which is enough to debug;
//! * case count comes from `PROPTEST_CASES` (default 64);
//! * regex strategies support the generator subset the tests use (char
//!   classes, `.`, groups, `{m,n}` repetition, escapes) rather than full
//!   regex syntax.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic RNG plumbing used by the `proptest!` macro expansion.

    /// Per-case deterministic RNG (splitmix64).
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a test name and case number, so every test gets an
        /// independent, reproducible stream.
        pub fn for_case(test_name: &str, case: u64) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform usize in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range");
            lo + self.below((hi - lo) as u64) as usize
        }
    }

    /// Number of cases per property (env `PROPTEST_CASES`, default 64).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::string::StringPattern;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64, isize);

    /// String literals are regex-subset generation strategies, as in real
    /// proptest.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            StringPattern::compile(self).generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::sample::Index;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index::from_raw(rng.next_u64())
        }
    }

    /// Strategy for any value of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.usize_in(self.len.start, self.len.end)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An index into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Index {
            Index(raw)
        }

        /// Resolves against a concrete length (must be nonzero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy drawing one of a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.usize_in(0, self.options.len())].clone()
        }
    }

    /// `prop::sample::select(options)`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select on empty options");
        Select { options }
    }
}

pub mod option {
    //! `prop::option::of`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod string {
    //! Generation-only regex subset for string strategies.

    use crate::test_runner::TestRng;

    /// A compiled generation pattern.
    pub struct StringPattern {
        nodes: Vec<Node>,
    }

    enum Node {
        Literal(char),
        /// Any printable ASCII character.
        Dot,
        /// Inclusive character ranges.
        Class(Vec<(char, char)>),
        /// A quantified sub-pattern: repeat `min..=max` times.
        Repeat(Box<StringPattern>, usize, usize),
    }

    impl StringPattern {
        /// Compiles the subset: literals, `.`, `[...]`, `(...)`, `\x`
        /// escapes, and `{m,n}` / `{n}` quantifiers on the preceding node.
        pub fn compile(pattern: &str) -> StringPattern {
            let chars: Vec<char> = pattern.chars().collect();
            let mut pos = 0;
            let nodes = parse_seq(&chars, &mut pos, pattern);
            assert!(pos == chars.len(), "unbalanced pattern `{pattern}`");
            StringPattern { nodes }
        }

        /// Draws one string.
        pub fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            self.generate_into(rng, &mut out);
            out
        }

        fn generate_into(&self, rng: &mut TestRng, out: &mut String) {
            for node in &self.nodes {
                match node {
                    Node::Literal(c) => out.push(*c),
                    Node::Dot => {
                        out.push(char::from(0x20 + rng.below(0x5F) as u8));
                    }
                    Node::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let span = u64::from(*hi) - u64::from(*lo) + 1;
                            if pick < span {
                                out.push(
                                    char::from_u32(*lo as u32 + pick as u32)
                                        .expect("class range is valid"),
                                );
                                break;
                            }
                            pick -= span;
                        }
                    }
                    Node::Repeat(sub, min, max) => {
                        let n = if min == max {
                            *min
                        } else {
                            rng.usize_in(*min, max + 1)
                        };
                        for _ in 0..n {
                            sub.generate_into(rng, out);
                        }
                    }
                }
            }
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<Node> {
        let mut nodes = Vec::new();
        while *pos < chars.len() {
            let node = match chars[*pos] {
                ')' => break,
                '.' => {
                    *pos += 1;
                    Node::Dot
                }
                '[' => {
                    *pos += 1;
                    Node::Class(parse_class(chars, pos, pattern))
                }
                '(' => {
                    *pos += 1;
                    let inner = parse_seq(chars, pos, pattern);
                    assert!(
                        chars.get(*pos) == Some(&')'),
                        "unclosed group in `{pattern}`"
                    );
                    *pos += 1;
                    Node::Repeat(Box::new(StringPattern { nodes: inner }), 1, 1)
                }
                '\\' => {
                    *pos += 1;
                    let c = chars[*pos];
                    *pos += 1;
                    Node::Literal(c)
                }
                '|' | '*' | '+' | '?' => {
                    panic!("unsupported regex feature `{}` in `{pattern}`", chars[*pos])
                }
                c => {
                    *pos += 1;
                    Node::Literal(c)
                }
            };
            // Quantifier?
            if chars.get(*pos) == Some(&'{') {
                *pos += 1;
                let mut min = String::new();
                while chars[*pos].is_ascii_digit() {
                    min.push(chars[*pos]);
                    *pos += 1;
                }
                let min: usize = min.parse().expect("quantifier min");
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut max = String::new();
                    while chars[*pos].is_ascii_digit() {
                        max.push(chars[*pos]);
                        *pos += 1;
                    }
                    max.parse().expect("quantifier max")
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "unclosed quantifier in `{pattern}`");
                *pos += 1;
                nodes.push(Node::Repeat(
                    Box::new(StringPattern { nodes: vec![node] }),
                    min,
                    max,
                ));
            } else {
                nodes.push(node);
            }
        }
        nodes
    }

    fn parse_class(chars: &[char], pos: &mut usize, pattern: &str) -> Vec<(char, char)> {
        let mut ranges = Vec::new();
        while *pos < chars.len() && chars[*pos] != ']' {
            let lo = if chars[*pos] == '\\' {
                *pos += 1;
                let c = chars[*pos];
                *pos += 1;
                c
            } else {
                let c = chars[*pos];
                *pos += 1;
                c
            };
            if chars.get(*pos) == Some(&'-') && chars.get(*pos + 1) != Some(&']') {
                *pos += 1;
                let hi = chars[*pos];
                *pos += 1;
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        assert!(
            chars.get(*pos) == Some(&']'),
            "unclosed character class in `{pattern}`"
        );
        *pos += 1;
        ranges
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;`

    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `PROPTEST_CASES` drawn inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Asserts inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 100u64..200) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((100..200).contains(&y));
        }

        #[test]
        fn regex_subset_generates_matching_shapes(
            word in "[a-z]{2,5}",
            host in "[a-z]{1,3}(\\.[a-z]{1,3}){0,2}",
        ) {
            prop_assert!((2..=5).contains(&word.len()));
            prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
            for part in host.split('.') {
                prop_assert!((1..=3).contains(&part.len()), "{host}");
            }
        }

        #[test]
        fn tuples_and_maps_compose(pair in (0u8..4, "[x-z]{1}").prop_map(|(n, s)| (n, s)) ) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1.len(), 1);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn vec_strategy_len_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("vec", 1);
        let s = crate::collection::vec(any::<u8>(), 2..6);
        for _ in 0..100 {
            let v = crate::strategy::Strategy::generate(&s, &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn index_resolves() {
        let mut rng = crate::test_runner::TestRng::for_case("idx", 0);
        for _ in 0..50 {
            let idx = <crate::sample::Index as Arbitrary>::arbitrary(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::for_case("det", 5);
            crate::strategy::Strategy::generate(&".{0,40}", &mut rng)
        };
        assert_eq!(draw(), draw());
    }
}
