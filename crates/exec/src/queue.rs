//! A blocking bounded MPMC queue built on `Mutex` + `Condvar`.
//!
//! The orchestrator uses one of these between the crawl workers and the
//! single reducer. The capacity is the backpressure knob: when the reducer
//! falls behind, workers block in [`BoundedQueue::push`] instead of piling
//! finished site reductions into memory.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error returned by [`BoundedQueue::push`] once the queue is closed; the
/// rejected item is handed back to the caller.
#[derive(Debug)]
pub struct QueueClosed<T>(pub T);

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// Blocking multi-producer multi-consumer queue with a fixed capacity.
pub struct BoundedQueue<T> {
    cap: usize,
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `cap` items (`cap` is clamped to 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            cap: cap.max(1),
            state: Mutex::new(State {
                buf: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Blocks until there is room, then enqueues `item`. Returns the item
    /// back inside [`QueueClosed`] if the queue was closed first — the
    /// caller is shutting down and must not spin.
    pub fn push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut state = self.state.lock().unwrap();
        while state.buf.len() >= self.cap && !state.closed {
            state = self.not_full.wait(state).unwrap();
        }
        if state.closed {
            return Err(QueueClosed(item));
        }
        state.buf.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns `None`
    /// only when the queue is closed *and* drained, so a consumer loop of
    /// `while let Some(x) = q.pop()` sees every item ever pushed.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.buf.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).unwrap();
        }
    }

    /// Closes the queue: pending and future `push` calls fail, `pop`
    /// drains what is buffered and then returns `None`.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Number of items currently buffered (snapshot, for tests/metrics).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().buf.len()
    }

    /// True when nothing is buffered (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_pop_makes_room() {
        let q = BoundedQueue::new(1);
        q.push(0u32).unwrap();
        let blocked = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                q.push(1).unwrap();
                blocked.store(1, Ordering::SeqCst);
            });
            // The producer cannot finish until we drain one slot.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(blocked.load(Ordering::SeqCst), 0, "push must backpressure");
            assert_eq!(q.pop(), Some(0));
            assert_eq!(q.pop(), Some(1));
        });
        assert_eq!(blocked.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.push('a').unwrap();
        q.push('b').unwrap();
        q.close();
        assert!(q.push('c').is_err());
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_producer() {
        let q = BoundedQueue::new(1);
        q.push(7u8).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                let err = q.push(8).expect_err("closed queue must reject the push");
                assert_eq!(err.0, 8);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
        });
    }

    #[test]
    fn mpmc_delivers_every_item_exactly_once() {
        let q = BoundedQueue::new(3);
        let seen = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..3u64 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..50 {
                        q.push(p * 1000 + i).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let (q, seen) = (&q, &seen);
                s.spawn(move || {
                    while let Some(v) = q.pop() {
                        seen.lock().unwrap().push(v);
                    }
                });
            }
            s.spawn(|| {
                // Give producers time to finish, then close.
                while !q.is_empty() || seen.lock().unwrap().len() < 150 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                }
                q.close();
            });
        });
        let mut got = seen.into_inner().unwrap();
        got.sort_unstable();
        let mut want: Vec<u64> = (0..3u64)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
