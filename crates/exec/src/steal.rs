//! Per-worker work-stealing deques over ascending positions.
//!
//! Positions are dealt round-robin in ascending order, so every deque is
//! born sorted. The two access rules keep them sorted forever:
//!
//! * an **owner** pops its own *front* — its local minimum;
//! * a **thief** steals a victim's *back* — the victim's maximum.
//!
//! Together with round-robin dealing this gives the invariant the
//! orchestrator's liveness proof leans on: the globally-smallest
//! unclaimed position is always at the *front* of some deque, so the
//! worker that owns (or unclaims into) that deque can always reach it.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A set of per-worker deques holding unclaimed work positions.
pub struct StealDeques {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealDeques {
    /// Deals `0..total` positions round-robin across `workers` deques.
    pub fn deal(workers: usize, total: usize) -> Self {
        let workers = workers.max(1);
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for pos in 0..total {
            deques[pos % workers].push_back(pos);
        }
        StealDeques {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Pops the front (minimum) of worker `w`'s own deque.
    pub fn pop_own(&self, w: usize) -> Option<usize> {
        self.deques[w].lock().unwrap().pop_front()
    }

    /// Steals the back (maximum) of the first non-empty victim, scanning
    /// the other workers in ring order starting after `w`.
    pub fn steal(&self, w: usize) -> Option<usize> {
        let n = self.deques.len();
        for k in 1..n {
            let victim = (w + k) % n;
            if let Some(pos) = self.deques[victim].lock().unwrap().pop_back() {
                return Some(pos);
            }
        }
        None
    }

    /// Claims the next position for worker `w`. The default order is own
    /// front first, then steal; `steal_first` (driven by the chaos
    /// scheduler) inverts it to provoke adversarial interleavings.
    pub fn next(&self, w: usize, steal_first: bool) -> Option<usize> {
        if steal_first {
            self.steal(w).or_else(|| self.pop_own(w))
        } else {
            self.pop_own(w).or_else(|| self.steal(w))
        }
    }

    /// Returns a claimed-but-not-started position to worker `w`'s own
    /// deque, inserting at its sorted slot so the deque's front stays its
    /// minimum. Used when admission times out: the worker gives the high
    /// position back and claims its (now possibly smaller) front instead.
    pub fn unclaim(&self, w: usize, pos: usize) {
        let mut deque = self.deques[w].lock().unwrap();
        let at = deque.partition_point(|&p| p < pos);
        deque.insert(at, pos);
    }

    /// Total unclaimed positions across every deque (snapshot).
    pub fn remaining(&self) -> usize {
        self.deques.iter().map(|d| d.lock().unwrap().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deal_is_round_robin_ascending() {
        let d = StealDeques::deal(3, 7);
        // Worker 0 owns 0,3,6; worker 1 owns 1,4; worker 2 owns 2,5.
        assert_eq!(d.pop_own(0), Some(0));
        assert_eq!(d.pop_own(0), Some(3));
        assert_eq!(d.pop_own(1), Some(1));
        assert_eq!(d.pop_own(2), Some(2));
    }

    #[test]
    fn steal_takes_the_victims_back() {
        let d = StealDeques::deal(2, 6);
        // Worker 1's deque is [1, 3, 5]; a thief must take 5 first.
        assert_eq!(d.steal(0), Some(5));
        assert_eq!(d.steal(0), Some(3));
        // Owner still sees its minimum at the front.
        assert_eq!(d.pop_own(1), Some(1));
    }

    #[test]
    fn next_claims_every_position_exactly_once() {
        let d = StealDeques::deal(4, 23);
        let mut got = Vec::new();
        let mut w = 0;
        while let Some(pos) = d.next(w, got.len() % 3 == 0) {
            got.push(pos);
            w = (w + 1) % 4;
        }
        got.sort_unstable();
        assert_eq!(got, (0..23).collect::<Vec<_>>());
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn unclaim_restores_sorted_order() {
        let d = StealDeques::deal(2, 8);
        // Worker 0 owns [0, 2, 4, 6]; claim 0 and 2, then unclaim 2.
        assert_eq!(d.pop_own(0), Some(0));
        assert_eq!(d.pop_own(0), Some(2));
        d.unclaim(0, 2);
        assert_eq!(d.pop_own(0), Some(2), "unclaimed position is the new front");
        assert_eq!(d.pop_own(0), Some(4));
    }

    #[test]
    fn unclaim_of_a_stolen_high_position_lands_at_the_back() {
        let d = StealDeques::deal(2, 6);
        let stolen = d.steal(0).unwrap();
        assert_eq!(stolen, 5);
        d.unclaim(0, stolen);
        // Worker 0's deque is now [0, 2, 4, 5]: front is still its minimum.
        assert_eq!(d.pop_own(0), Some(0));
    }
}
