//! The global in-flight cap, expressed as a sliding admission window over
//! ascending work positions.
//!
//! A bounded queue alone does not bound memory: a worker that races far
//! ahead of a slow site would park its finished results in the reducer's
//! reorder buffer, which grows without limit. The window closes that hole.
//! Position `p` may only *start* while `p < base + cap`; the reducer
//! advances `base` as it folds results in ascending order, so at most
//! `cap` sites are ever past admission but not yet folded — the reorder
//! buffer is capped by construction.
//!
//! [`AdmissionWindow::admit`] waits with a timeout rather than parking
//! forever: under adversarial claim orders (the chaos scheduler) a worker
//! can be holding a high position while the globally-smallest one sits in
//! its own deque. The timeout lets it *unclaim* and go pick the smallest
//! instead, which guarantees progress for any `cap >= 1`.

use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Outcome of an [`AdmissionWindow::admit`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The position is inside the window; go crawl it.
    Admitted,
    /// Still outside the window after the timeout; the caller should
    /// unclaim the position and claim its locally-smallest one instead.
    Retry,
    /// The abort predicate fired while waiting; shut down.
    Aborted,
}

/// Sliding window `[base, base + cap)` over ascending positions.
pub struct AdmissionWindow {
    cap: usize,
    base: Mutex<usize>,
    advanced: Condvar,
}

impl AdmissionWindow {
    /// Creates a window admitting at most `cap` in-flight positions
    /// (`cap` is clamped to 1, which degrades to strict serial order).
    pub fn new(cap: usize) -> Self {
        AdmissionWindow {
            cap: cap.max(1),
            base: Mutex::new(0),
            advanced: Condvar::new(),
        }
    }

    /// In-flight cap the window was built with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Waits up to `patience` for `pos` to fall inside the window,
    /// re-checking `abort` on every wakeup.
    pub fn admit(&self, pos: usize, patience: Duration, abort: &dyn Fn() -> bool) -> Admission {
        let mut base = self.base.lock().unwrap();
        while pos >= *base + self.cap {
            if abort() {
                return Admission::Aborted;
            }
            let (guard, timeout) = self.advanced.wait_timeout(base, patience).unwrap();
            base = guard;
            if timeout.timed_out() && pos >= *base + self.cap {
                return if abort() {
                    Admission::Aborted
                } else {
                    Admission::Retry
                };
            }
        }
        Admission::Admitted
    }

    /// Advances the window base to `new_base` (monotonic; smaller values
    /// are ignored) and wakes every waiter.
    pub fn advance_to(&self, new_base: usize) {
        let mut base = self.base.lock().unwrap();
        if new_base > *base {
            *base = new_base;
            drop(base);
            self.advanced.notify_all();
        }
    }

    /// Current window base (snapshot, for tests/metrics).
    pub fn base(&self) -> usize {
        *self.base.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NEVER: &dyn Fn() -> bool = &|| false;

    #[test]
    fn positions_inside_the_window_admit_immediately() {
        let w = AdmissionWindow::new(3);
        for pos in 0..3 {
            assert_eq!(
                w.admit(pos, Duration::from_millis(1), NEVER),
                Admission::Admitted
            );
        }
    }

    #[test]
    fn position_outside_the_window_retries_until_advanced() {
        let w = AdmissionWindow::new(2);
        assert_eq!(
            w.admit(2, Duration::from_millis(5), NEVER),
            Admission::Retry
        );
        w.advance_to(1);
        assert_eq!(
            w.admit(2, Duration::from_millis(5), NEVER),
            Admission::Admitted
        );
    }

    #[test]
    fn advance_is_monotonic() {
        let w = AdmissionWindow::new(1);
        w.advance_to(5);
        w.advance_to(3);
        assert_eq!(w.base(), 5);
    }

    #[test]
    fn abort_preempts_the_wait() {
        let w = AdmissionWindow::new(1);
        let out = w.admit(10, Duration::from_secs(60), &|| true);
        assert_eq!(out, Admission::Aborted);
    }

    #[test]
    fn blocked_admit_wakes_on_advance() {
        let w = AdmissionWindow::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| w.admit(3, Duration::from_secs(5), NEVER));
            std::thread::sleep(Duration::from_millis(10));
            w.advance_to(3);
            assert_eq!(h.join().unwrap(), Admission::Admitted);
        });
    }

    /// Liveness regression for the supervised orchestrator's worst case:
    /// *every* worker simultaneously holds a position outside a cap-1
    /// window, so nobody is in a position to advance the base and no
    /// `advance_to` notification is ever coming. The timeout/unclaim
    /// protocol must still drain the pool: each waiter times out with
    /// [`Admission::Retry`], returns its position, and re-claims the
    /// globally smallest one, which is always admissible. The earlier
    /// suite only exercised a single stalled worker; a group-wide stall
    /// additionally depends on no lost wakeups between concurrent
    /// `wait_timeout` re-checks.
    #[test]
    fn simultaneous_group_stall_drains_without_deadlock() {
        use std::collections::BTreeSet;
        use std::time::Instant;

        const WORKERS: usize = 8;
        const POSITIONS: usize = 64;
        let w = AdmissionWindow::new(1);
        // Every worker starts out claiming a position from the top of the
        // range — all of them outside [0, 1), so the whole group stalls
        // at once. The remaining positions sit unclaimed in the pool.
        let pool: Mutex<BTreeSet<usize>> = Mutex::new((0..POSITIONS - WORKERS).collect());
        let done: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
        let start = Instant::now();
        let watchdog = move || start.elapsed() > Duration::from_secs(30);
        std::thread::scope(|s| {
            for worker in 0..WORKERS {
                let w = &w;
                let pool = &pool;
                let done = &done;
                let watchdog = &watchdog;
                s.spawn(move || {
                    let mut claimed = Some(POSITIONS - 1 - worker);
                    loop {
                        let Some(pos) = claimed else { return };
                        match w.admit(pos, Duration::from_millis(2), watchdog) {
                            Admission::Admitted => {
                                done.lock().unwrap().insert(pos);
                                w.advance_to(pos + 1);
                                claimed = {
                                    let mut pool = pool.lock().unwrap();
                                    pool.pop_first()
                                };
                            }
                            Admission::Retry => {
                                // Unclaim, then take the globally smallest
                                // live position instead.
                                let mut pool = pool.lock().unwrap();
                                pool.insert(pos);
                                claimed = pool.pop_first();
                            }
                            Admission::Aborted => {
                                panic!("admission window deadlocked under a group-wide stall")
                            }
                        }
                    }
                });
            }
        });
        let done = done.into_inner().unwrap();
        assert_eq!(done, (0..POSITIONS).collect::<BTreeSet<_>>());
    }
}
