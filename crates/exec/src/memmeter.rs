//! The counting global allocator behind the bench harness's per-stage
//! memory columns and the orchestrator's bounded-memory regression test.
//!
//! The allocator itself is process-global state, so this module only
//! *defines* [`CountingAlloc`]; each binary that wants metering installs
//! its own `#[global_allocator] static A: CountingAlloc = CountingAlloc;`.
//! Binaries that do not install it still link fine — [`Meter`] just reads
//! counters that stay at zero.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Live heap bytes right now.
static LIVE: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE`] since the last [`Meter::start`] reset.
static PEAK: AtomicU64 = AtomicU64::new(0);
/// Total allocation calls (alloc + alloc_zeroed + growing realloc counts 1).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Total bytes ever allocated (the cumulative churn, not the live set).
static TOTAL: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Bytes charged to the current thread's task (the supervisor's
    /// per-site allocation budget reads this). A plain `Cell` so the
    /// allocator hook never allocates or synchronizes.
    static TASK_BYTES: Cell<u64> = const { Cell::new(0) };
}

fn on_alloc(bytes: u64) {
    ALLOCS.fetch_add(1, Relaxed);
    TOTAL.fetch_add(bytes, Relaxed);
    let live = LIVE.fetch_add(bytes, Relaxed) + bytes;
    PEAK.fetch_max(live, Relaxed);
    // try_with: allocations during TLS teardown must not panic.
    let _ = TASK_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
}

fn on_dealloc(bytes: u64) {
    LIVE.fetch_sub(bytes, Relaxed);
}

/// Monotonic count of bytes ever charged to the current thread's task.
///
/// Grows with every allocation when [`CountingAlloc`] is installed, and
/// with explicit [`task_charge`] calls always. Task budgets are enforced
/// as a delta between two reads, so the counter never needs resetting —
/// it may wrap, and deltas are taken with `wrapping_sub`.
pub fn task_allocated() -> u64 {
    TASK_BYTES.try_with(Cell::get).unwrap_or(0)
}

/// Charges `bytes` to the current thread's task as if they were allocated.
///
/// This is the deterministic injection point for allocation-bomb fault
/// kinds: the charge lands whether or not the binary installed
/// [`CountingAlloc`], so budget breaches reproduce byte-identically
/// across metered and unmetered builds.
pub fn task_charge(bytes: u64) {
    let _ = TASK_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
}

/// A [`System`]-backed allocator that tracks live bytes, the live peak,
/// and the allocation count. Relaxed atomics: the counters are statistics,
/// not synchronization, and meter boundaries are quiescent points (no
/// crawl threads are running when a stage is read).
pub struct CountingAlloc;

// SAFETY: defers every operation to `System` unchanged; the bookkeeping
// only touches atomics and never the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            on_dealloc(layout.size() as u64);
            on_alloc(new_size as u64);
        }
        p
    }
}

/// Live heap bytes right now (zero unless [`CountingAlloc`] is installed
/// as the binary's global allocator).
pub fn live_bytes() -> u64 {
    LIVE.load(Relaxed)
}

/// Wall time + allocator counters of one metered stage.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct StageStats {
    pub seconds: f64,
    /// Net peak live bytes: the stage's own high-water mark over what was
    /// already live when it started.
    pub peak_bytes: u64,
    pub alloc_count: u64,
    /// Total bytes the stage allocated (cumulative churn). The per-site
    /// quotient of this and `alloc_count` are the bench report's
    /// allocation-pressure columns.
    pub total_bytes: u64,
}

impl StageStats {
    /// Accumulates meters across repeated runs of one logical stage:
    /// times and counts add, peaks take the max.
    pub fn absorb(&mut self, other: StageStats) {
        self.seconds += other.seconds;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.alloc_count += other.alloc_count;
        self.total_bytes += other.total_bytes;
    }
}

/// Meters one stage: wall time, net peak live bytes (peak during the
/// stage minus live at its start — what the stage itself holds at its
/// worst), and allocation count.
pub struct Meter {
    t: Instant,
    live0: u64,
    allocs0: u64,
    total0: u64,
}

impl Meter {
    pub fn start() -> Meter {
        let live0 = LIVE.load(Relaxed);
        PEAK.store(live0, Relaxed);
        Meter {
            t: Instant::now(),
            live0,
            allocs0: ALLOCS.load(Relaxed),
            total0: TOTAL.load(Relaxed),
        }
    }

    pub fn finish(self) -> StageStats {
        StageStats {
            seconds: self.t.elapsed().as_secs_f64(),
            peak_bytes: PEAK.load(Relaxed).saturating_sub(self.live0),
            alloc_count: ALLOCS.load(Relaxed) - self.allocs0,
            total_bytes: TOTAL.load(Relaxed) - self.total0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit-test binary does not install the allocator, so the
    // counters stay flat — which is itself the documented contract.
    #[test]
    fn meter_without_installed_allocator_reads_zero_memory() {
        let m = Meter::start();
        let v: Vec<u8> = vec![0; 4096];
        assert_eq!(v.len(), 4096);
        let stats = m.finish();
        assert_eq!(stats.peak_bytes, 0);
        assert_eq!(stats.alloc_count, 0);
        assert!(stats.seconds >= 0.0);
    }

    #[test]
    fn task_charge_accumulates_without_installed_allocator() {
        let before = task_allocated();
        task_charge(1024);
        task_charge(8);
        assert_eq!(task_allocated().wrapping_sub(before), 1032);
    }

    #[test]
    fn task_meter_is_thread_local() {
        task_charge(500);
        let other = std::thread::spawn(|| {
            let before = task_allocated();
            task_charge(7);
            task_allocated().wrapping_sub(before)
        })
        .join()
        .unwrap();
        assert_eq!(other, 7);
    }

    #[test]
    fn absorb_adds_times_and_maxes_peaks() {
        let mut a = StageStats {
            seconds: 1.0,
            peak_bytes: 10,
            alloc_count: 3,
            total_bytes: 100,
        };
        a.absorb(StageStats {
            seconds: 2.0,
            peak_bytes: 7,
            alloc_count: 5,
            total_bytes: 40,
        });
        assert_eq!(a.seconds, 3.0);
        assert_eq!(a.peak_bytes, 10);
        assert_eq!(a.alloc_count, 8);
        assert_eq!(a.total_bytes, 140);
    }
}
