//! Execution primitives for the pipelined crawl orchestrator.
//!
//! This crate is deliberately tiny and dependency-free: it holds the four
//! concurrency building blocks the orchestrator in `sockscope-crawler`
//! composes, plus the counting allocator the bench harness and the
//! bounded-memory regression tests share.
//!
//! * [`BoundedQueue`] — a blocking MPMC channel with a hard capacity.
//!   Producers park when the queue is full (backpressure), consumers park
//!   when it is empty, and `close()` wakes everyone for shutdown.
//! * [`AdmissionWindow`] — the global in-flight cap. Work items carry an
//!   ascending position; a worker may only *start* position `p` while
//!   `p < base + cap`, and the reducer advances `base` as it folds results
//!   in order. This bounds the reorder buffer, not just the queue.
//! * [`StealDeques`] — per-worker deques of positions dealt round-robin in
//!   ascending order. Owners pop their front (their local minimum), thieves
//!   take a victim's back (the victim's maximum), so every deque stays
//!   sorted and the global minimum is always at some deque's front.
//! * [`ChaosSchedule`] — a pure-hash adversary that perturbs claim order
//!   and injects yields from a seed, used by the determinism stress tests.
//!
//! None of these primitives know anything about crawling; the determinism
//! argument lives in `DESIGN.md` §10 next to the orchestrator that wires
//! them together.

#![deny(unsafe_code)]

pub mod chaos;
pub mod memmeter;
pub mod queue;
pub mod steal;
pub mod window;

pub use chaos::ChaosSchedule;
pub use queue::{BoundedQueue, QueueClosed};
pub use steal::StealDeques;
pub use window::{Admission, AdmissionWindow};
