//! Seeded scheduling adversary for determinism stress tests.
//!
//! The byte-identity contract says the orchestrator's output is
//! independent of claim order and queue timing. The way to *test* that is
//! to make claim order hostile on purpose: a [`ChaosSchedule`] derives,
//! from a seed, whether each claim should steal before popping its own
//! deque and how many scheduler yields to inject, so a single-threaded CI
//! box still explores steal-heavy, backpressure-heavy interleavings —
//! reproducibly.

/// The same split-mix style finalizer the fault subsystem uses: cheap,
/// stateless, and fully determined by `(seed, stream)`.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure-hash source of adversarial scheduling decisions.
#[derive(Debug, Clone, Copy)]
pub struct ChaosSchedule {
    seed: u64,
}

impl ChaosSchedule {
    /// Creates a schedule; equal seeds give bit-equal decision streams.
    pub fn new(seed: u64) -> Self {
        ChaosSchedule { seed }
    }

    fn draw(&self, worker: usize, step: u64, salt: u64) -> u64 {
        mix(self.seed ^ salt, ((worker as u64) << 40) ^ step)
    }

    /// Should worker `worker`'s `step`-th claim try to steal before
    /// popping its own deque? True roughly a third of the time.
    pub fn steal_first(&self, worker: usize, step: u64) -> bool {
        self.draw(worker, step, 0x57EA_1F12).is_multiple_of(3)
    }

    /// Number of `thread::yield_now` calls to inject before the claim
    /// (0..=3), to shake up which thread wins each race.
    pub fn yields(&self, worker: usize, step: u64) -> u32 {
        (self.draw(worker, step, 0x71E1_D000) % 4) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let a = ChaosSchedule::new(42);
        let b = ChaosSchedule::new(42);
        for w in 0..4 {
            for step in 0..100 {
                assert_eq!(a.steal_first(w, step), b.steal_first(w, step));
                assert_eq!(a.yields(w, step), b.yields(w, step));
            }
        }
    }

    #[test]
    fn different_seeds_disagree_somewhere() {
        let a = ChaosSchedule::new(1);
        let b = ChaosSchedule::new(2);
        let diverged = (0..200u64).any(|s| a.steal_first(0, s) != b.steal_first(0, s));
        assert!(diverged);
    }

    #[test]
    fn both_claim_orders_occur() {
        let c = ChaosSchedule::new(0xC0DE);
        let steals = (0..300u64).filter(|&s| c.steal_first(1, s)).count();
        assert!(
            steals > 50 && steals < 250,
            "steal_first rate degenerate: {steals}/300"
        );
    }
}
