//! Seeded, deterministic fault injection for the sockscope crawl pipeline.
//!
//! The paper's real crawl was lossy: unreachable sites, rejected WebSocket
//! handshakes, and truncated connections were part of the measurement
//! (Bashir et al. report per-crawl coverage in §3.3). The synthetic crawl
//! reproduces that loss *deterministically*. A [`FaultProfile`] names the
//! per-mille rates for each failure class plus retry/backoff/timeout knobs;
//! a [`FaultPlan`] derived from `(seed, site_rank, connection_id)` decides
//! — as a pure hash, no RNG state threaded anywhere — which fault, if any,
//! strikes a given connection attempt. Time for backoff, stalls, and page
//! budgets is a [`VirtualClock`] counting abstract ticks, so chaos runs are
//! byte-reproducible across machines, thread counts, and pipelines.
//!
//! Decisions are a function of the *attempt number* too: a connection that
//! is refused on attempt 0 may succeed on attempt 1, which is what gives
//! the crawler's bounded-retry loop something real to do.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// splitmix64-style mixing of a seed and a stream index into one draw.
///
/// This is the same finalizer the crawler uses for per-site seeds, so every
/// layer derives independent deterministic streams the same way.
#[must_use]
pub fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a string, used to turn URLs into connection identifiers.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// Channel constants keep the independent decision streams of one plan from
// aliasing each other (fault class vs. rejection status vs. page failure).
const CHAN_DECIDE: u64 = 0x6661_756C_7400_0001; // "fault"
const CHAN_STATUS: u64 = 0x6661_756C_7400_0002;
const CHAN_PAGE: u64 = 0x6661_756C_7400_0003;
const CHAN_HAZARD: u64 = 0x6661_756C_7400_0004;
const CHAN_HAZARD_STEP: u64 = 0x6661_756C_7400_0005;

/// A deterministic clock counting abstract ticks. No wall time anywhere.
///
/// One tick is "one unit of simulated waiting": backoff sleeps, stalled
/// reads, and page budgets are all denominated in ticks, so two runs with
/// the same seed advance their clocks identically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now: u64,
}

impl VirtualClock {
    /// A clock at tick zero.
    #[must_use]
    pub fn new() -> VirtualClock {
        VirtualClock { now: 0 }
    }

    /// Current tick.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the clock by `ticks` (saturating — the clock never wraps).
    pub fn advance(&mut self, ticks: u64) {
        self.now = self.now.saturating_add(ticks);
    }
}

/// Per-mille failure rates plus the retry/backoff/timeout knobs of a run.
///
/// Rates are out of 1000 and are consumed cumulatively in declaration
/// order, so their sum should stay ≤ 1000 (anything beyond is clamped by
/// the draw). All-zero rates make every [`FaultPlan`] decision
/// [`FaultDecision::None`]; callers normalize such profiles away so the
/// zero-fault pipeline stays byte-identical to a run with no profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultProfile {
    /// ‰ of connection attempts refused before any handshake bytes flow.
    pub connect_refused_pm: u16,
    /// ‰ of handshakes answered with a non-101 HTTP status.
    pub handshake_reject_pm: u16,
    /// ‰ of handshakes answered 101 but with a corrupt `Sec-WebSocket-Accept`.
    pub bad_accept_pm: u16,
    /// ‰ of sessions whose final server burst is cut mid-frame (EOF).
    pub truncated_frame_pm: u16,
    /// ‰ of sessions whose final server burst has a corrupted frame header.
    pub malformed_frame_pm: u16,
    /// ‰ of sessions dropped mid-message with no close handshake.
    pub drop_pm: u16,
    /// ‰ of sessions whose reads stall for [`FaultProfile::stall_ticks`].
    pub stall_pm: u16,
    /// ‰ of page fetches that fail outright (site unreachable). The same
    /// rate drives HTTP subresource fetch failures (`Network.loadingFailed`).
    pub page_fail_pm: u16,
    /// Retries after a failed page fetch (attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base << n` ticks.
    pub backoff_base: u64,
    /// Virtual-clock budget per page; blowing it marks the page timed out.
    pub page_budget: u64,
    /// How many ticks a stalled read burns before data arrives.
    pub stall_ticks: u64,
    /// Stalls at or beyond this many ticks abort the session instead.
    pub stall_timeout: u64,
    /// ‰ of sites whose visit panics mid-flight ([`SiteHazard::PanicAt`]).
    pub site_panic_pm: u16,
    /// ‰ of sites whose visit never terminates ([`SiteHazard::HangAt`]).
    pub site_hang_pm: u16,
    /// ‰ of sites that allocate without bound ([`SiteHazard::AllocBomb`]).
    pub site_alloc_pm: u16,
    /// Supervisor deadline per site attempt, in visit steps (virtual ticks).
    pub site_deadline: u64,
    /// Supervisor allocation budget per site attempt, in bytes.
    pub site_alloc_budget: u64,
    /// Whole-site retries after a supervised breach (attempts = retries + 1).
    pub site_retries: u32,
}

impl FaultProfile {
    /// All rates zero: the profile that injects nothing.
    #[must_use]
    pub fn none() -> FaultProfile {
        FaultProfile {
            connect_refused_pm: 0,
            handshake_reject_pm: 0,
            bad_accept_pm: 0,
            truncated_frame_pm: 0,
            malformed_frame_pm: 0,
            drop_pm: 0,
            stall_pm: 0,
            page_fail_pm: 0,
            max_retries: 2,
            backoff_base: 8,
            page_budget: 10_000,
            stall_ticks: 40,
            stall_timeout: 100,
            site_panic_pm: 0,
            site_hang_pm: 0,
            site_alloc_pm: 0,
            site_deadline: 512,
            site_alloc_budget: 256 << 20,
            site_retries: 2,
        }
    }

    /// Light chaos: a few percent of connections and pages fail.
    #[must_use]
    pub fn mild() -> FaultProfile {
        FaultProfile {
            connect_refused_pm: 25,
            handshake_reject_pm: 15,
            bad_accept_pm: 5,
            truncated_frame_pm: 15,
            malformed_frame_pm: 10,
            drop_pm: 15,
            stall_pm: 20,
            page_fail_pm: 40,
            ..FaultProfile::none()
        }
    }

    /// Heavy chaos: a large share of everything fails; stalls often abort.
    #[must_use]
    pub fn heavy() -> FaultProfile {
        FaultProfile {
            connect_refused_pm: 120,
            handshake_reject_pm: 80,
            bad_accept_pm: 40,
            truncated_frame_pm: 80,
            malformed_frame_pm: 60,
            drop_pm: 80,
            stall_pm: 100,
            page_fail_pm: 150,
            page_budget: 400,
            stall_ticks: 120,
            ..FaultProfile::none()
        }
    }

    /// Site-level hostility only: ~20% of sites draw a hazard, transport is
    /// clean. This is the supervision chaos workload — without a supervisor
    /// the crawl dies on the first poisoned site; with one it completes and
    /// quarantines exactly the poisoned set.
    #[must_use]
    pub fn poison() -> FaultProfile {
        FaultProfile {
            site_panic_pm: 70,
            site_hang_pm: 70,
            site_alloc_pm: 60,
            ..FaultProfile::none()
        }
    }

    /// Looks a profile up by name (`none`/`zero`, `mild`, `heavy`, `poison`).
    #[must_use]
    pub fn named(name: &str) -> Option<FaultProfile> {
        match name {
            "none" | "zero" => Some(FaultProfile::none()),
            "mild" => Some(FaultProfile::mild()),
            "heavy" => Some(FaultProfile::heavy()),
            "poison" => Some(FaultProfile::poison()),
            _ => None,
        }
    }

    /// `true` when every *transport* rate is zero — the profile can inject
    /// nothing on the wire. Site hazards are deliberately excluded: a
    /// hazard-only profile leaves the transport pipeline byte-identical to a
    /// fault-free run, which is what lets the supervisor prove that the
    /// non-quarantined remainder of a poisoned crawl is unchanged.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.connect_refused_pm == 0
            && self.handshake_reject_pm == 0
            && self.bad_accept_pm == 0
            && self.truncated_frame_pm == 0
            && self.malformed_frame_pm == 0
            && self.drop_pm == 0
            && self.stall_pm == 0
            && self.page_fail_pm == 0
    }

    /// `true` when any site-hazard rate is nonzero — the supervisor has
    /// something to inject. Orthogonal to [`FaultProfile::is_zero`].
    #[must_use]
    pub fn has_hazards(&self) -> bool {
        self.site_panic_pm != 0 || self.site_hang_pm != 0 || self.site_alloc_pm != 0
    }
}

/// What a [`FaultPlan`] decided for one connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// No fault: the attempt proceeds normally.
    None,
    /// TCP connect refused; no handshake bytes are exchanged.
    ConnectRefused,
    /// The server answers the upgrade with this non-101 status.
    HandshakeReject {
        /// The HTTP status sent instead of 101.
        status: u16,
    },
    /// The server answers 101 but with a corrupt `Sec-WebSocket-Accept`.
    BadAccept,
    /// The final server burst is cut mid-frame and the socket EOFs.
    TruncatedFrame,
    /// A frame header in the final server burst is corrupted on the wire.
    MalformedFrame,
    /// The socket drops mid-message with no close handshake.
    MidMessageDrop,
    /// Reads stall for [`FaultProfile::stall_ticks`] before data arrives.
    StalledRead,
}

impl FaultDecision {
    /// `true` for anything but [`FaultDecision::None`].
    #[must_use]
    pub fn is_fault(&self) -> bool {
        !matches!(self, FaultDecision::None)
    }

    /// Chrome-style network error text for CDP-style error events.
    #[must_use]
    pub fn error_text(&self) -> Option<&'static str> {
        match self {
            FaultDecision::None => None,
            FaultDecision::ConnectRefused => Some("net::ERR_CONNECTION_REFUSED"),
            FaultDecision::HandshakeReject { .. } => {
                Some("Error during WebSocket handshake: unexpected response code")
            }
            FaultDecision::BadAccept => {
                Some("Error during WebSocket handshake: incorrect Sec-WebSocket-Accept")
            }
            FaultDecision::TruncatedFrame => Some("net::ERR_CONNECTION_CLOSED"),
            FaultDecision::MalformedFrame => Some("Invalid frame header"),
            FaultDecision::MidMessageDrop => Some("net::ERR_CONNECTION_RESET"),
            FaultDecision::StalledRead => Some("net::ERR_TIMED_OUT"),
        }
    }

    /// Short stable key for the failure-accounting taxonomy.
    #[must_use]
    pub fn kind(&self) -> Option<&'static str> {
        match self {
            FaultDecision::None => None,
            FaultDecision::ConnectRefused => Some("connect_refused"),
            FaultDecision::HandshakeReject { .. } => Some("handshake_reject"),
            FaultDecision::BadAccept => Some("bad_accept"),
            FaultDecision::TruncatedFrame => Some("truncated_frame"),
            FaultDecision::MalformedFrame => Some("malformed_frame"),
            FaultDecision::MidMessageDrop => Some("mid_message_drop"),
            FaultDecision::StalledRead => Some("stalled_read"),
        }
    }
}

/// The deterministic fault oracle for one `(seed, site_rank, connection_id)`.
///
/// All methods are pure functions of the constructor inputs plus the
/// attempt number — there is no internal RNG state, so the same plan asked
/// the same question always gives the same answer regardless of call order,
/// thread interleaving, or pipeline shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    state: u64,
}

impl FaultPlan {
    /// Derives the plan for one connection of one site under one run seed.
    #[must_use]
    pub fn new(seed: u64, site_rank: u64, connection_id: u64) -> FaultPlan {
        FaultPlan {
            state: mix(mix(seed, site_rank.rotate_left(17)), connection_id),
        }
    }

    /// Decides the fault (if any) for connection attempt `attempt`.
    #[must_use]
    pub fn decide(&self, profile: &FaultProfile, attempt: u32) -> FaultDecision {
        let draw = mix(self.state, CHAN_DECIDE ^ u64::from(attempt)) % 1000;
        let mut edge = u64::from(profile.connect_refused_pm);
        if draw < edge {
            return FaultDecision::ConnectRefused;
        }
        edge += u64::from(profile.handshake_reject_pm);
        if draw < edge {
            const STATUSES: [u16; 4] = [403, 404, 500, 503];
            let pick = mix(self.state, CHAN_STATUS ^ u64::from(attempt)) as usize;
            return FaultDecision::HandshakeReject {
                status: STATUSES[pick % STATUSES.len()],
            };
        }
        edge += u64::from(profile.bad_accept_pm);
        if draw < edge {
            return FaultDecision::BadAccept;
        }
        edge += u64::from(profile.truncated_frame_pm);
        if draw < edge {
            return FaultDecision::TruncatedFrame;
        }
        edge += u64::from(profile.malformed_frame_pm);
        if draw < edge {
            return FaultDecision::MalformedFrame;
        }
        edge += u64::from(profile.drop_pm);
        if draw < edge {
            return FaultDecision::MidMessageDrop;
        }
        edge += u64::from(profile.stall_pm);
        if draw < edge {
            return FaultDecision::StalledRead;
        }
        FaultDecision::None
    }

    /// Whether page fetch attempt `attempt` fails outright (unreachable).
    ///
    /// Page failure draws from its own channel so it never correlates with
    /// the socket-fault stream of a connection that hashed the same way.
    #[must_use]
    pub fn page_unreachable(&self, profile: &FaultProfile, attempt: u32) -> bool {
        mix(self.state, CHAN_PAGE ^ u64::from(attempt)) % 1000 < u64::from(profile.page_fail_pm)
    }
}

/// A site-level hazard: hostility that attacks the *instrumentation* rather
/// than the wire. Unlike [`FaultDecision`]s, which the pipeline absorbs as
/// measured loss, a hazard kills the visit — only a supervisor (catching the
/// unwind, enforcing the deadline or budget) turns it into accounted loss.
///
/// `step` counts page visits within the site (0 = the homepage), so the
/// hazard fires at a deterministic point of the crawl regardless of worker
/// count or steal schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteHazard {
    /// The visit panics when page-visit step `step` begins.
    PanicAt {
        /// Page-visit step at which the panic fires.
        step: u64,
    },
    /// The visit stops making progress from step `step` on: the virtual
    /// clock races ahead while no further page completes (a hang, detected
    /// by the supervisor's deadline).
    HangAt {
        /// Page-visit step at which progress stops.
        step: u64,
    },
    /// The visit allocates without bound from step `step` on (detected by
    /// the supervisor's allocation budget).
    AllocBomb {
        /// Page-visit step at which the allocation runaway starts.
        step: u64,
    },
}

impl SiteHazard {
    /// Short stable key for the quarantine taxonomy.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SiteHazard::PanicAt { .. } => "panic",
            SiteHazard::HangAt { .. } => "hang",
            SiteHazard::AllocBomb { .. } => "alloc_bomb",
        }
    }
}

/// The deterministic hazard oracle for one `(seed, site_rank)`.
///
/// Hostility is a property of the *site*, not the attempt: a real site that
/// crashes the instrumentation does so reproducibly, so the draw is made
/// once per site and the same hazard strikes every supervised retry. (The
/// retry loop exists for transient failures the oracle does not model.)
/// The mixing rotates the rank differently from [`FaultPlan`] and folds in
/// its own channel, so hazard draws never alias transport-fault draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HazardPlan {
    state: u64,
}

impl HazardPlan {
    /// Derives the plan for one site under one run seed.
    #[must_use]
    pub fn new(seed: u64, site_rank: u64) -> HazardPlan {
        HazardPlan {
            state: mix(mix(seed, site_rank.rotate_left(29)), CHAN_HAZARD),
        }
    }

    /// Decides the hazard (if any) this site carries under `profile`.
    ///
    /// Rates are consumed cumulatively like [`FaultPlan::decide`]; the firing
    /// step draws from its own channel and lands in `0..3`, early enough that
    /// every site's crawl reaches it.
    #[must_use]
    pub fn decide(&self, profile: &FaultProfile) -> Option<SiteHazard> {
        let draw = mix(self.state, CHAN_HAZARD) % 1000;
        let step = mix(self.state, CHAN_HAZARD_STEP) % 3;
        let mut edge = u64::from(profile.site_panic_pm);
        if draw < edge {
            return Some(SiteHazard::PanicAt { step });
        }
        edge += u64::from(profile.site_hang_pm);
        if draw < edge {
            return Some(SiteHazard::HangAt { step });
        }
        edge += u64::from(profile.site_alloc_pm);
        if draw < edge {
            return Some(SiteHazard::AllocBomb { step });
        }
        None
    }
}

/// Everything the browser needs to consult the fault oracle for one visit.
#[derive(Debug, Clone)]
pub struct FaultContext {
    /// The active profile (never zero-rate; callers normalize those away).
    pub profile: FaultProfile,
    /// The run-level fault seed.
    pub seed: u64,
    /// Rank of the site being crawled (part of every plan's identity).
    pub site_rank: u64,
    /// Which retry of the current page this visit is (0 = first try).
    pub attempt: u32,
}

impl FaultContext {
    /// The plan for one connection (identified by a URL-derived id).
    #[must_use]
    pub fn plan_for(&self, connection_id: u64) -> FaultPlan {
        FaultPlan::new(self.seed, self.site_rank, connection_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let profile = FaultProfile::heavy();
        for conn in 0..50u64 {
            let a = FaultPlan::new(7, 3, conn);
            let b = FaultPlan::new(7, 3, conn);
            for attempt in 0..4 {
                assert_eq!(a.decide(&profile, attempt), b.decide(&profile, attempt));
                assert_eq!(
                    a.page_unreachable(&profile, attempt),
                    b.page_unreachable(&profile, attempt)
                );
            }
        }
    }

    #[test]
    fn zero_profile_never_faults() {
        let profile = FaultProfile::none();
        assert!(profile.is_zero());
        for conn in 0..500u64 {
            let plan = FaultPlan::new(99, conn % 7, conn);
            assert_eq!(plan.decide(&profile, 0), FaultDecision::None);
            assert!(!plan.page_unreachable(&profile, 0));
        }
    }

    #[test]
    fn heavy_profile_reaches_every_variant() {
        let profile = FaultProfile::heavy();
        let mut seen = std::collections::BTreeSet::new();
        for conn in 0..20_000u64 {
            let d = FaultPlan::new(1, 1, conn).decide(&profile, 0);
            if let Some(kind) = d.kind() {
                seen.insert(kind);
            }
        }
        for kind in [
            "connect_refused",
            "handshake_reject",
            "bad_accept",
            "truncated_frame",
            "malformed_frame",
            "mid_message_drop",
            "stalled_read",
        ] {
            assert!(seen.contains(kind), "never drew {kind}");
        }
    }

    #[test]
    fn rates_are_approximately_honoured() {
        // 120‰ connect-refused on the heavy profile: expect roughly 12%
        // of 20k independent plans, within a generous tolerance.
        let profile = FaultProfile::heavy();
        let refused = (0..20_000u64)
            .filter(|&c| {
                FaultPlan::new(42, 5, c).decide(&profile, 0) == FaultDecision::ConnectRefused
            })
            .count();
        assert!((1800..3000).contains(&refused), "refused = {refused}");
    }

    #[test]
    fn attempts_draw_independent_streams() {
        // With heavy faults, a refused attempt 0 must sometimes be followed
        // by a clean attempt 1 — otherwise retry could never help.
        let profile = FaultProfile::heavy();
        let recovered = (0..5_000u64)
            .filter(|&c| {
                let plan = FaultPlan::new(11, 2, c);
                plan.decide(&profile, 0).is_fault() && !plan.decide(&profile, 1).is_fault()
            })
            .count();
        assert!(recovered > 0);
    }

    #[test]
    fn named_profiles_resolve() {
        assert_eq!(FaultProfile::named("none"), Some(FaultProfile::none()));
        assert_eq!(FaultProfile::named("zero"), Some(FaultProfile::none()));
        assert_eq!(FaultProfile::named("mild"), Some(FaultProfile::mild()));
        assert_eq!(FaultProfile::named("heavy"), Some(FaultProfile::heavy()));
        assert_eq!(FaultProfile::named("bogus"), None);
        assert!(!FaultProfile::mild().is_zero());
    }

    #[test]
    fn virtual_clock_advances_and_saturates() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance(10);
        clock.advance(5);
        assert_eq!(clock.now(), 15);
        clock.advance(u64::MAX);
        assert_eq!(clock.now(), u64::MAX);
    }

    #[test]
    fn handshake_reject_status_is_plausible() {
        let profile = FaultProfile {
            handshake_reject_pm: 1000,
            ..FaultProfile::none()
        };
        for conn in 0..200u64 {
            match FaultPlan::new(3, 1, conn).decide(&profile, 0) {
                FaultDecision::HandshakeReject { status } => {
                    assert!(matches!(status, 403 | 404 | 500 | 503));
                }
                other => panic!("expected rejection, got {other:?}"),
            }
        }
    }

    #[test]
    fn hazard_draws_are_deterministic_and_per_site() {
        let profile = FaultProfile::poison();
        for rank in 0..500u64 {
            let a = HazardPlan::new(0xD15C, rank).decide(&profile);
            let b = HazardPlan::new(0xD15C, rank).decide(&profile);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn poison_profile_is_transport_clean_but_hazardous() {
        let poison = FaultProfile::poison();
        assert!(poison.is_zero(), "poison must inject nothing on the wire");
        assert!(poison.has_hazards());
        assert!(!FaultProfile::none().has_hazards());
        assert!(!FaultProfile::heavy().has_hazards());
        assert_eq!(FaultProfile::named("poison"), Some(poison));
    }

    #[test]
    fn poison_rate_is_approximately_one_in_five() {
        let profile = FaultProfile::poison();
        let mut kinds = std::collections::BTreeMap::new();
        let hit = (0..20_000u64)
            .filter_map(|rank| HazardPlan::new(9, rank).decide(&profile))
            .inspect(|h| {
                *kinds.entry(h.kind()).or_insert(0u64) += 1;
                assert!(matches!(
                    h,
                    SiteHazard::PanicAt { step }
                        | SiteHazard::HangAt { step }
                        | SiteHazard::AllocBomb { step } if *step < 3
                ));
            })
            .count();
        assert!((3200..4800).contains(&hit), "hazarded = {hit}");
        for kind in ["panic", "hang", "alloc_bomb"] {
            assert!(kinds.contains_key(kind), "never drew {kind}");
        }
    }

    #[test]
    fn hazard_stream_does_not_alias_fault_stream() {
        // Same seed, same rank: the site-hazard draw and the transport draw
        // for connection 0 must be independent streams. If they aliased, a
        // poisoned site would also always carry the same transport fault.
        let both = FaultProfile {
            connect_refused_pm: 200,
            site_panic_pm: 200,
            ..FaultProfile::none()
        };
        let mut agree = 0usize;
        for rank in 0..2_000u64 {
            let hazarded = HazardPlan::new(7, rank).decide(&both).is_some();
            let faulted = FaultPlan::new(7, rank, 0).decide(&both, 0).is_fault();
            if hazarded == faulted {
                agree += 1;
            }
        }
        // Independent 20% streams agree ~68% of the time; aliased streams
        // would agree 100%.
        assert!(agree < 1800, "streams look aliased: agree = {agree}");
    }

    #[test]
    fn error_text_matches_taxonomy() {
        assert_eq!(FaultDecision::None.error_text(), None);
        assert_eq!(FaultDecision::None.kind(), None);
        let all = [
            FaultDecision::ConnectRefused,
            FaultDecision::HandshakeReject { status: 403 },
            FaultDecision::BadAccept,
            FaultDecision::TruncatedFrame,
            FaultDecision::MalformedFrame,
            FaultDecision::MidMessageDrop,
            FaultDecision::StalledRead,
        ];
        for d in all {
            assert!(d.is_fault());
            assert!(d.error_text().is_some());
            assert!(d.kind().is_some());
        }
    }
}
