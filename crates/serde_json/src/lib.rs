//! Offline stand-in for `serde_json`.
//!
//! Pairs with the vendored `serde` facade: [`to_string`] renders a
//! [`Value`] tree to compact JSON text, [`from_str`] parses strict JSON
//! back into a tree (and on into any `Deserialize` type). The grammar is
//! standard RFC 8259 JSON — the parser rejects trailing garbage, bare
//! words, and unterminated literals, which the PII classifier relies on to
//! tell real JSON payloads from JSON-ish JavaScript.

#![forbid(unsafe_code)]

pub use serde::de::Error;
pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Serializes any `Serialize` type to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_strict(text)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let text = f.to_string();
                out.push_str(&text);
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; match serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse_value_strict(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    skip_ws(bytes, &mut pos);
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(text, bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::new(format!("expected , or ] at offset {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected : at offset {pos}")));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(text, bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    _ => return Err(Error::new(format!("expected , or }} at offset {pos}"))),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(Error::new(format!(
            "unexpected byte {c:#x} at offset {pos}"
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at offset {pos}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    if !matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
        return Err(Error::new(format!("invalid number at offset {start}")));
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let slice = std::str::from_utf8(&bytes[start..*pos]).expect("numeric bytes are ascii");
    if is_float {
        slice
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{slice}`")))
    } else if slice.starts_with('-') {
        slice
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| Error::new(format!("integer overflow `{slice}`")))
    } else {
        slice
            .parse::<u64>()
            .map(Value::UInt)
            .map_err(|_| Error::new(format!("integer overflow `{slice}`")))
    }
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at offset {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uXXXX low half.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(Error::new("lone high surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::new(format!("invalid escape at offset {pos}"))),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(Error::new(format!("control character at offset {pos}")));
            }
            Some(&c) if c < 0x80 => {
                out.push(c as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar from the source.
                let rest = &text[*pos..];
                let c = rest.chars().next().ok_or_else(|| Error::new("bad utf-8"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| Error::new("truncated \\u escape"))?;
    let text = std::str::from_utf8(slice).map_err(|_| Error::new("bad \\u escape"))?;
    u32::from_str_radix(text, 16).map_err(|_| Error::new("bad \\u escape"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-7",
            "18446744073709551615",
            "1.5",
            "\"hi\"",
        ] {
            let v: Value = from_str(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text, "{text}");
        }
    }

    #[test]
    fn rejects_json_ish_javascript() {
        assert!(from_str::<Value>("{oops").is_err());
        assert!(from_str::<Value>("{x: 1}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }

    #[test]
    fn nested_roundtrip() {
        let text = r#"{"ads":[{"img":"http://x/y.png","caption":"c \"q\" \\ \n"}],"n":3}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        let ads = v.get("ads").and_then(Value::as_array).unwrap();
        assert_eq!(
            ads[0].get("img").and_then(Value::as_str),
            Some("http://x/y.png")
        );
        let rendered = to_string(&v).unwrap();
        let reparsed: Value = from_str(&rendered).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1}\u{1F600}";
        let json = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }
}
