//! Thompson NFA construction from the AST.

use crate::ast::{Ast, CharClass};

/// One NFA instruction.
#[derive(Debug, Clone)]
pub enum Inst {
    /// Match a character against a class, then goto next.
    Class(CharClass, usize),
    /// Any char except `\n`, then goto next.
    AnyChar(usize),
    /// Assert start of input.
    StartAnchor(usize),
    /// Assert end of input.
    EndAnchor(usize),
    /// Fork: try `a` first (greedy preference), then `b`.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Accept.
    Match,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instructions; entry point is index 0 … see `start`.
    pub insts: Vec<Inst>,
    /// Entry instruction index.
    pub start: usize,
    /// `true` if the pattern begins with `^` (enables a fast path: no
    /// restart at every haystack position).
    pub anchored_start: bool,
}

/// Compiles an AST into an NFA program.
pub fn compile(ast: &Ast) -> Program {
    let mut c = Compiler { insts: Vec::new() };
    let start = c.compile_node(ast);
    c.insts.push(Inst::Match);
    let match_idx = c.insts.len() - 1;
    c.patch_dangling(start.dangling, match_idx);
    Program {
        insts: c.insts,
        start: start.entry,
        anchored_start: starts_anchored(ast),
    }
}

fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Concat(items) => items.first().map(starts_anchored).unwrap_or(false),
        Ast::Alt(branches) => branches.iter().all(starts_anchored),
        Ast::Repeat { node, min, .. } => *min > 0 && starts_anchored(node),
        _ => false,
    }
}

/// A compiled fragment: entry index plus the instruction slots that still
/// need their "next" pointer patched.
struct Fragment {
    entry: usize,
    dangling: Vec<Patch>,
}

/// A hole in an instruction waiting for a target.
#[derive(Clone, Copy)]
enum Patch {
    /// `Class`/`AnyChar`/anchor/`Jmp` next pointer at index.
    Next(usize),
    /// First branch of `Split` at index.
    SplitA(usize),
    /// Second branch of `Split` at index.
    SplitB(usize),
}

struct Compiler {
    insts: Vec<Inst>,
}

const HOLE: usize = usize::MAX;

impl Compiler {
    fn push(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    fn patch_dangling(&mut self, dangling: Vec<Patch>, target: usize) {
        for p in dangling {
            match p {
                Patch::Next(i) => match &mut self.insts[i] {
                    Inst::Class(_, next)
                    | Inst::AnyChar(next)
                    | Inst::StartAnchor(next)
                    | Inst::EndAnchor(next)
                    | Inst::Jmp(next) => *next = target,
                    _ => unreachable!("Next patch on branchless inst"),
                },
                Patch::SplitA(i) => {
                    if let Inst::Split(a, _) = &mut self.insts[i] {
                        *a = target;
                    } else {
                        unreachable!("SplitA patch on non-split")
                    }
                }
                Patch::SplitB(i) => {
                    if let Inst::Split(_, b) = &mut self.insts[i] {
                        *b = target;
                    } else {
                        unreachable!("SplitB patch on non-split")
                    }
                }
            }
        }
    }

    fn compile_node(&mut self, ast: &Ast) -> Fragment {
        match ast {
            Ast::Empty => {
                let i = self.push(Inst::Jmp(HOLE));
                Fragment {
                    entry: i,
                    dangling: vec![Patch::Next(i)],
                }
            }
            Ast::Class(class) => {
                let i = self.push(Inst::Class(class.clone(), HOLE));
                Fragment {
                    entry: i,
                    dangling: vec![Patch::Next(i)],
                }
            }
            Ast::AnyChar => {
                let i = self.push(Inst::AnyChar(HOLE));
                Fragment {
                    entry: i,
                    dangling: vec![Patch::Next(i)],
                }
            }
            Ast::StartAnchor => {
                let i = self.push(Inst::StartAnchor(HOLE));
                Fragment {
                    entry: i,
                    dangling: vec![Patch::Next(i)],
                }
            }
            Ast::EndAnchor => {
                let i = self.push(Inst::EndAnchor(HOLE));
                Fragment {
                    entry: i,
                    dangling: vec![Patch::Next(i)],
                }
            }
            Ast::Concat(items) => {
                let mut iter = items.iter();
                let first = self.compile_node(iter.next().expect("non-empty concat"));
                let entry = first.entry;
                let mut dangling = first.dangling;
                for item in iter {
                    let frag = self.compile_node(item);
                    self.patch_dangling(dangling, frag.entry);
                    dangling = frag.dangling;
                }
                Fragment { entry, dangling }
            }
            Ast::Alt(branches) => {
                // Chain of splits, greedy-preferring earlier branches.
                let mut dangling = Vec::new();
                let mut split_holes: Vec<usize> = Vec::new();
                let mut entry = None;
                for (i, branch) in branches.iter().enumerate() {
                    let last = i + 1 == branches.len();
                    if last {
                        let frag = self.compile_node(branch);
                        if let Some(hole) = split_holes.pop() {
                            self.patch_dangling(vec![Patch::SplitB(hole)], frag.entry);
                        }
                        if entry.is_none() {
                            entry = Some(frag.entry);
                        }
                        dangling.extend(frag.dangling);
                    } else {
                        let split = self.push(Inst::Split(HOLE, HOLE));
                        if let Some(hole) = split_holes.pop() {
                            self.patch_dangling(vec![Patch::SplitB(hole)], split);
                        }
                        if entry.is_none() {
                            entry = Some(split);
                        }
                        let frag = self.compile_node(branch);
                        self.patch_dangling(vec![Patch::SplitA(split)], frag.entry);
                        dangling.extend(frag.dangling);
                        split_holes.push(split);
                    }
                }
                Fragment {
                    entry: entry.expect("non-empty alt"),
                    dangling,
                }
            }
            Ast::Repeat { node, min, max } => self.compile_repeat(node, *min, *max),
        }
    }

    fn compile_repeat(&mut self, node: &Ast, min: u32, max: Option<u32>) -> Fragment {
        match (min, max) {
            (0, None) => {
                // e* : split(entry, out); entry -> … -> back to split
                let split = self.push(Inst::Split(HOLE, HOLE));
                let frag = self.compile_node(node);
                self.patch_dangling(vec![Patch::SplitA(split)], frag.entry);
                self.patch_dangling(frag.dangling, split);
                Fragment {
                    entry: split,
                    dangling: vec![Patch::SplitB(split)],
                }
            }
            (1, None) => {
                // e+ : e; split(back-to-e, out)
                let frag = self.compile_node(node);
                let split = self.push(Inst::Split(HOLE, HOLE));
                self.patch_dangling(frag.dangling, split);
                self.patch_dangling(vec![Patch::SplitA(split)], frag.entry);
                Fragment {
                    entry: frag.entry,
                    dangling: vec![Patch::SplitB(split)],
                }
            }
            (0, Some(1)) => {
                // e? : split(e, out)
                let split = self.push(Inst::Split(HOLE, HOLE));
                let frag = self.compile_node(node);
                self.patch_dangling(vec![Patch::SplitA(split)], frag.entry);
                let mut dangling = frag.dangling;
                dangling.push(Patch::SplitB(split));
                Fragment {
                    entry: split,
                    dangling,
                }
            }
            (min, max) => {
                // General {n,m} / {n,} by unrolling: n mandatory copies, then
                // (m-n) optional copies or a trailing star.
                let mut entry = None;
                let mut dangling: Vec<Patch> = Vec::new();
                for _ in 0..min {
                    let frag = self.compile_node(node);
                    if let Some(_e) = entry {
                        self.patch_dangling(dangling, frag.entry);
                    } else {
                        entry = Some(frag.entry);
                    }
                    dangling = frag.dangling;
                }
                match max {
                    None => {
                        // Trailing star.
                        let star = self.compile_repeat(node, 0, None);
                        if let Some(_e) = entry {
                            self.patch_dangling(dangling, star.entry);
                        } else {
                            entry = Some(star.entry);
                        }
                        Fragment {
                            entry: entry.expect("min>0 or star entry"),
                            dangling: star.dangling,
                        }
                    }
                    Some(m) => {
                        let mut out_holes: Vec<Patch> = Vec::new();
                        for _ in min..m {
                            let split = self.push(Inst::Split(HOLE, HOLE));
                            if let Some(_e) = entry {
                                self.patch_dangling(dangling, split);
                            } else {
                                entry = Some(split);
                            }
                            let frag = self.compile_node(node);
                            self.patch_dangling(vec![Patch::SplitA(split)], frag.entry);
                            out_holes.push(Patch::SplitB(split));
                            dangling = frag.dangling;
                        }
                        dangling.extend(out_holes);
                        match entry {
                            Some(e) => Fragment { entry: e, dangling },
                            None => {
                                // {0,0} — matches empty.
                                let i = self.push(Inst::Jmp(HOLE));
                                Fragment {
                                    entry: i,
                                    dangling: vec![Patch::Next(i)],
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn prog(pat: &str) -> Program {
        compile(&parse(pat, false).unwrap())
    }

    #[test]
    fn no_holes_survive_compilation() {
        for pat in [
            "a",
            "ab",
            "a|b",
            "a*",
            "a+",
            "a?",
            "a{3}",
            "a{2,5}",
            "a{2,}",
            "(ab|cd)+x",
            "^a(b|c)*d$",
            "[a-z]{1,3}",
            "",
            "()|a",
        ] {
            let p = prog(pat);
            for (i, inst) in p.insts.iter().enumerate() {
                let targets: Vec<usize> = match inst {
                    Inst::Class(_, n)
                    | Inst::AnyChar(n)
                    | Inst::StartAnchor(n)
                    | Inst::EndAnchor(n)
                    | Inst::Jmp(n) => vec![*n],
                    Inst::Split(a, b) => vec![*a, *b],
                    Inst::Match => vec![],
                };
                for t in targets {
                    assert!(t < p.insts.len(), "pattern {pat:?}: hole at inst {i}");
                }
            }
        }
    }

    #[test]
    fn anchored_detection() {
        assert!(prog("^abc").anchored_start);
        assert!(prog("^a|^b").anchored_start);
        assert!(!prog("abc").anchored_start);
        assert!(!prog("a|^b").anchored_start);
    }
}
