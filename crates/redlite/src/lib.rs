//! # sockscope-redlite
//!
//! A small regular-expression engine for the content-analysis stage of the
//! study. §4.3 of the paper: *"We extracted all of these variables from raw
//! network traffic by manually building up a large library of regular
//! expressions."* `sockscope-analysis` carries that pattern library; this
//! crate provides the engine it runs on.
//!
//! ## Engine
//!
//! Patterns compile to a Thompson NFA; the Pike VM remains the semantic
//! reference (linear in the input, no backtracking blow-ups). On top of it
//! sit three fast paths, none of which may ever change a decision:
//!
//! * **Literal prefilters** ([`literal`](crate)) — required/prefix
//!   literals extracted from the AST reject most haystacks with plain
//!   substring scans before any engine runs.
//! * **A lazy DFA** — existence checks run on cached byte-class
//!   transitions; the bounded state cache falls back to the Pike VM when
//!   it overflows (see [`DfaStats`]).
//! * **[`RegexSet`]** — one combined pass reports the full set of matching
//!   patterns, which is how the PII library classifies each message.
//!
//! The reference engine stays reachable via [`Regex::pikevm_is_match`] /
//! [`Regex::pikevm_find`]; the differential fuzz target in the workspace
//! root asserts the paths never disagree.
//!
//! ## Supported syntax
//!
//! * literals, `.` (any char except `\n`)
//! * classes `[a-z0-9_]`, negated `[^…]`, escapes `\d \D \w \W \s \S`
//! * escaped metacharacters (`\.`, `\[`, …), `\t \n \r`
//! * alternation `a|b`, grouping `(…)` (non-capturing semantics)
//! * quantifiers `* + ?` and bounded `{n} {n,} {n,m}` (greedy; the VM
//!   reports leftmost match start and the longest-of-leftmost end)
//! * anchors `^` and `$` (whole-input, not multi-line)
//! * case-insensitive compilation via [`Regex::new_ci`]
//!
//! This is the subset the PII library needs; anything outside it is a
//! compile-time [`Error`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod dfa;
mod literal;
mod nfa;
mod set;
mod vm;

pub use ast::Error;
pub use dfa::DfaStats;
pub use literal::{find_lit, find_lit_scalar};
pub use set::{RegexSet, SetMatches};

use std::sync::Mutex;

/// A compiled regular expression.
pub struct Regex {
    program: nfa::Program,
    pattern: String,
    ci: bool,
    prefilter: literal::Prefilter,
    /// Lazy-DFA cache. `try_lock` on the hot path: under contention the
    /// caller simply runs the Pike VM, so the lock never blocks matching.
    dfa: Mutex<dfa::LazyDfa>,
}

impl std::fmt::Debug for Regex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Regex")
            .field("pattern", &self.pattern)
            .field("ci", &self.ci)
            .finish_non_exhaustive()
    }
}

impl Clone for Regex {
    fn clone(&self) -> Regex {
        Regex {
            program: self.program.clone(),
            pattern: self.pattern.clone(),
            ci: self.ci,
            prefilter: self.prefilter.clone(),
            // A fresh, empty DFA cache: states re-fill lazily.
            dfa: Mutex::new(dfa::LazyDfa::new(&self.program)),
        }
    }
}

/// A successful match: byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the match start.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
}

impl Regex {
    /// Compiles a case-sensitive pattern.
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        Self::compile(pattern, false)
    }

    /// Compiles a case-insensitive pattern.
    pub fn new_ci(pattern: &str) -> Result<Regex, Error> {
        Self::compile(pattern, true)
    }

    fn compile(pattern: &str, ci: bool) -> Result<Regex, Error> {
        let ast = ast::parse(pattern, ci)?;
        let program = nfa::compile(&ast);
        let prefilter = literal::Prefilter::from_ast(&ast, ci);
        let dfa = Mutex::new(dfa::LazyDfa::new(&program));
        Ok(Regex {
            program,
            pattern: pattern.to_string(),
            ci,
            prefilter,
            dfa,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// `true` if the pattern matches anywhere in `haystack`. Faster than
    /// [`Regex::find`]: required-literal prefilter, then the lazy DFA,
    /// with the Pike VM as fallback. Decisions are identical to
    /// [`Regex::pikevm_is_match`] on every input.
    pub fn is_match(&self, haystack: &str) -> bool {
        if !self.prefilter.admits(haystack, 0) {
            if let Ok(mut d) = self.dfa.try_lock() {
                d.note_prefilter_reject();
            }
            return false;
        }
        let start = match self.prefilter.earliest_start(haystack, 0) {
            Some(s) => s,
            None => return false,
        };
        if self.program.anchored_start && start > 0 {
            // Anchored pattern whose guaranteed prefix is absent at 0.
            return false;
        }
        if let Ok(mut d) = self.dfa.try_lock() {
            let prefix = dfa::prefix_of(&self.prefilter);
            if let Some(hit) = d.is_match(&self.program, haystack, start, prefix) {
                return hit;
            }
        }
        vm::is_match(&self.program, haystack)
    }

    /// Leftmost match in `haystack`.
    ///
    /// Span resolution always runs on the Pike VM; the prefilter only
    /// advances the scan to the first viable start position, which cannot
    /// change the leftmost match.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        self.find_at(haystack, 0)
    }

    fn find_at(&self, haystack: &str, from: usize) -> Option<Match> {
        if !self.prefilter.admits(haystack, from) {
            return None;
        }
        let start = self.prefilter.earliest_start(haystack, from)?;
        if self.program.anchored_start {
            // The prefix-occurrence shortcut does not apply to anchored
            // patterns (their only viable start is position 0).
            return vm::find(&self.program, haystack, from);
        }
        vm::find(&self.program, haystack, start)
    }

    /// Reference existence check on the bare Pike VM — the engine the
    /// fast paths are differentially tested against.
    pub fn pikevm_is_match(&self, haystack: &str) -> bool {
        vm::is_match(&self.program, haystack)
    }

    /// Reference leftmost match on the bare Pike VM (no prefilter).
    pub fn pikevm_find(&self, haystack: &str) -> Option<Match> {
        vm::find(&self.program, haystack, 0)
    }

    /// Snapshot of this regex's lazy-DFA cache counters.
    pub fn cache_stats(&self) -> DfaStats {
        self.dfa.lock().map(|d| d.stats()).unwrap_or_default()
    }

    /// Iterates non-overlapping matches left to right.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> Matches<'r, 'h> {
        Matches {
            re: self,
            haystack,
            pos: 0,
        }
    }

    /// Extracts the matched text of the leftmost match.
    pub fn find_str<'h>(&self, haystack: &'h str) -> Option<&'h str> {
        self.find(haystack).map(|m| &haystack[m.start..m.end])
    }
}

/// Iterator over non-overlapping matches.
pub struct Matches<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    pos: usize,
}

impl Iterator for Matches<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.pos > self.haystack.len() {
            return None;
        }
        let m = self.re.find_at(self.haystack, self.pos)?;
        // Advance past the match; for empty matches advance one char to
        // guarantee progress.
        self.pos = if m.end == m.start {
            next_char_boundary(self.haystack, m.end)
        } else {
            m.end
        };
        Some(m)
    }
}

fn next_char_boundary(s: &str, mut i: usize) -> usize {
    i += 1;
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, hay: &str) -> Option<(usize, usize)> {
        Regex::new(pat).unwrap().find(hay).map(|m| (m.start, m.end))
    }

    #[test]
    fn literal_match() {
        assert_eq!(m("cookie", "the cookie jar"), Some((4, 10)));
        assert_eq!(m("cookie", "no biscuits"), None);
    }

    #[test]
    fn dot_and_classes() {
        assert_eq!(m("c.t", "a cat sat"), Some((2, 5)));
        assert_eq!(m("[0-9]+", "uid=4281;"), Some((4, 8)));
        assert_eq!(m("[^ ]+", "  word  "), Some((2, 6)));
        assert!(Regex::new("\\d{4}").unwrap().is_match("year 2017"));
    }

    #[test]
    fn escapes() {
        assert_eq!(
            m("\\d+\\.\\d+\\.\\d+\\.\\d+", "ip=93.184.216.34;"),
            Some((3, 16))
        );
        assert!(Regex::new("\\w+").unwrap().is_match("snake_case"));
        assert!(Regex::new("\\s").unwrap().is_match("a b"));
        assert!(!Regex::new("\\S").unwrap().is_match("  \t "));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("(screen|viewport)=\\d+x\\d+").unwrap();
        assert!(re.is_match("screen=1920x1080"));
        assert!(re.is_match("viewport=1366x768"));
        assert!(!re.is_match("window=1x1"));
    }

    #[test]
    fn quantifiers() {
        assert_eq!(m("ab*c", "ac"), Some((0, 2)));
        assert_eq!(m("ab*c", "abbbc"), Some((0, 5)));
        assert_eq!(m("ab+c", "ac"), None);
        assert_eq!(m("ab?c", "abc"), Some((0, 3)));
        assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,}", "aaaa"), Some((0, 4)));
        assert_eq!(m("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,3}", "a"), None);
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^uid", "uid=1"), Some((0, 3)));
        assert_eq!(m("^uid", "xuid=1"), None);
        assert_eq!(m("\\d+$", "build 42"), Some((6, 8)));
        assert_eq!(m("\\d+$", "42 builds"), None);
        assert_eq!(m("^$", ""), Some((0, 0)));
    }

    #[test]
    fn leftmost_longest_of_leftmost() {
        // Leftmost match wins even if a later match is longer.
        assert_eq!(m("a+", "baaa aaaa"), Some((1, 4)));
        // Greedy: at the leftmost start, the longest end is reported.
        assert_eq!(m("a|aa|aaa", "aaa"), Some((0, 3)));
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new_ci("user-agent").unwrap();
        assert!(re.is_match("User-Agent: Mozilla"));
        assert!(re.is_match("USER-AGENT: x"));
        let ci_class = Regex::new_ci("[a-z]+").unwrap();
        assert_eq!(ci_class.find_str("ABC"), Some("ABC"));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new("\\d+").unwrap();
        let hits: Vec<_> = re
            .find_iter("a1b22c333")
            .map(|m| (m.start, m.end))
            .collect();
        assert_eq!(hits, vec![(1, 2), (3, 5), (6, 9)]);
    }

    #[test]
    fn empty_match_progress() {
        let re = Regex::new("x*").unwrap();
        // Must terminate despite matching the empty string everywhere.
        let n = re.find_iter("abc").count();
        assert_eq!(n, 4); // before a, b, c, and at end
    }

    #[test]
    fn unicode_haystack() {
        let re = Regex::new("naïve").unwrap();
        assert!(re.is_match("a naïve plan"));
        let any = Regex::new("n.ïve").unwrap();
        assert!(any.is_match("naïve"));
    }

    #[test]
    fn linear_time_on_pathological_pattern() {
        // (a*)*b-style patterns kill backtrackers; the Pike VM shrugs.
        let re = Regex::new("(a*)*b").unwrap();
        let hay = "a".repeat(2000);
        assert!(!re.is_match(&hay));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{999999999999}").is_err());
    }

    #[test]
    fn regex_types_stay_send_and_sync() {
        // The analysis stage shares one PiiLibrary across scoped threads.
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Regex>();
        assert_sync::<RegexSet>();
    }

    #[test]
    fn fast_paths_agree_with_the_pike_vm() {
        let specs = [
            ("cookie", false),
            ("(^|[&?])ua=Mozilla/\\d", false),
            ("user-agent", true),
            ("^uid=", false),
            ("\\d+$", false),
            ("(a|b)*c", false),
            ("[^x]y", false),
        ];
        let hays = [
            "",
            "cookie=1",
            "the cookie jar",
            "?ua=Mozilla/5",
            "ua=Chrome",
            "User-AGENT: x",
            "uid=42",
            "xuid=42",
            "build 42",
            "42 builds",
            "abababc",
            "zy xy",
            "naïve café",
        ];
        for (pat, ci) in specs {
            let re = Regex::compile(pat, ci).unwrap();
            for hay in hays {
                assert_eq!(
                    re.is_match(hay),
                    re.pikevm_is_match(hay),
                    "is_match disagrees: {pat:?} on {hay:?}"
                );
                assert_eq!(
                    re.find(hay),
                    re.pikevm_find(hay),
                    "find disagrees: {pat:?} on {hay:?}"
                );
            }
        }
    }

    #[test]
    fn cache_stats_record_scans_and_cached_transitions() {
        let re = Regex::new("ab+c").unwrap();
        assert!(re.is_match("xxabbbc"));
        assert!(re.is_match("xxabbbc"));
        let stats = re.cache_stats();
        assert!(stats.scans >= 2, "{stats:?}");
        assert!(stats.states >= 2, "{stats:?}");
        assert!(stats.trans_cached > 0, "{stats:?}");
    }

    #[test]
    fn clone_resets_the_dfa_cache_but_not_decisions() {
        let re = Regex::new("needle[0-9]+").unwrap();
        assert!(re.is_match("xx needle7"));
        let clone = re.clone();
        assert_eq!(clone.cache_stats().scans, 0);
        assert!(clone.is_match("xx needle7"));
        assert!(!clone.is_match("xx needle"));
    }

    #[test]
    fn realistic_pii_patterns() {
        // The kinds of patterns the analysis crate actually uses.
        let ipv4 = Regex::new("(\\d{1,3}\\.){3}\\d{1,3}").unwrap();
        assert!(ipv4.is_match("client=10.0.0.1"));
        let cookie = Regex::new_ci("(^|[;&? ])(uid|userid|client_id|cid)=[A-Za-z0-9-]+").unwrap();
        assert!(cookie.is_match("sid=1; uid=abc-123"));
        let dom = Regex::new_ci("<(html|body|div|head)[ >]").unwrap();
        assert!(dom.is_match("<HTML ><body >"));
    }
}
