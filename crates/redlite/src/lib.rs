//! # sockscope-redlite
//!
//! A small regular-expression engine for the content-analysis stage of the
//! study. §4.3 of the paper: *"We extracted all of these variables from raw
//! network traffic by manually building up a large library of regular
//! expressions."* `sockscope-analysis` carries that pattern library; this
//! crate provides the engine it runs on.
//!
//! ## Engine
//!
//! Patterns compile to a Thompson NFA executed by a Pike VM, so matching is
//! **linear in the input** — no backtracking blow-ups, which matters because
//! the analyzer runs every pattern over every WebSocket payload (including
//! megabyte DOM-exfiltration blobs) in the benchmarks.
//!
//! ## Supported syntax
//!
//! * literals, `.` (any char except `\n`)
//! * classes `[a-z0-9_]`, negated `[^…]`, escapes `\d \D \w \W \s \S`
//! * escaped metacharacters (`\.`, `\[`, …), `\t \n \r`
//! * alternation `a|b`, grouping `(…)` (non-capturing semantics)
//! * quantifiers `* + ?` and bounded `{n} {n,} {n,m}` (greedy; the VM
//!   reports leftmost match start and the longest-of-leftmost end)
//! * anchors `^` and `$` (whole-input, not multi-line)
//! * case-insensitive compilation via [`Regex::new_ci`]
//!
//! This is the subset the PII library needs; anything outside it is a
//! compile-time [`Error`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod nfa;
mod vm;

pub use ast::Error;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    program: nfa::Program,
    pattern: String,
}

/// A successful match: byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Byte offset of the match start.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
}

impl Regex {
    /// Compiles a case-sensitive pattern.
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        Self::compile(pattern, false)
    }

    /// Compiles a case-insensitive pattern.
    pub fn new_ci(pattern: &str) -> Result<Regex, Error> {
        Self::compile(pattern, true)
    }

    fn compile(pattern: &str, ci: bool) -> Result<Regex, Error> {
        let ast = ast::parse(pattern, ci)?;
        let program = nfa::compile(&ast);
        Ok(Regex {
            program,
            pattern: pattern.to_string(),
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// `true` if the pattern matches anywhere in `haystack`. Faster than
    /// [`Regex::find`]: stops at the first accepting state.
    pub fn is_match(&self, haystack: &str) -> bool {
        vm::is_match(&self.program, haystack)
    }

    /// Leftmost match in `haystack`.
    pub fn find(&self, haystack: &str) -> Option<Match> {
        vm::find(&self.program, haystack, 0)
    }

    /// Iterates non-overlapping matches left to right.
    pub fn find_iter<'r, 'h>(&'r self, haystack: &'h str) -> Matches<'r, 'h> {
        Matches {
            re: self,
            haystack,
            pos: 0,
        }
    }

    /// Extracts the matched text of the leftmost match.
    pub fn find_str<'h>(&self, haystack: &'h str) -> Option<&'h str> {
        self.find(haystack).map(|m| &haystack[m.start..m.end])
    }
}

/// Iterator over non-overlapping matches.
pub struct Matches<'r, 'h> {
    re: &'r Regex,
    haystack: &'h str,
    pos: usize,
}

impl Iterator for Matches<'_, '_> {
    type Item = Match;

    fn next(&mut self) -> Option<Match> {
        if self.pos > self.haystack.len() {
            return None;
        }
        let m = vm::find(&self.re.program, self.haystack, self.pos)?;
        // Advance past the match; for empty matches advance one char to
        // guarantee progress.
        self.pos = if m.end == m.start {
            next_char_boundary(self.haystack, m.end)
        } else {
            m.end
        };
        Some(m)
    }
}

fn next_char_boundary(s: &str, mut i: usize) -> usize {
    i += 1;
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, hay: &str) -> Option<(usize, usize)> {
        Regex::new(pat).unwrap().find(hay).map(|m| (m.start, m.end))
    }

    #[test]
    fn literal_match() {
        assert_eq!(m("cookie", "the cookie jar"), Some((4, 10)));
        assert_eq!(m("cookie", "no biscuits"), None);
    }

    #[test]
    fn dot_and_classes() {
        assert_eq!(m("c.t", "a cat sat"), Some((2, 5)));
        assert_eq!(m("[0-9]+", "uid=4281;"), Some((4, 8)));
        assert_eq!(m("[^ ]+", "  word  "), Some((2, 6)));
        assert!(Regex::new("\\d{4}").unwrap().is_match("year 2017"));
    }

    #[test]
    fn escapes() {
        assert_eq!(
            m("\\d+\\.\\d+\\.\\d+\\.\\d+", "ip=93.184.216.34;"),
            Some((3, 16))
        );
        assert!(Regex::new("\\w+").unwrap().is_match("snake_case"));
        assert!(Regex::new("\\s").unwrap().is_match("a b"));
        assert!(!Regex::new("\\S").unwrap().is_match("  \t "));
    }

    #[test]
    fn alternation_and_groups() {
        let re = Regex::new("(screen|viewport)=\\d+x\\d+").unwrap();
        assert!(re.is_match("screen=1920x1080"));
        assert!(re.is_match("viewport=1366x768"));
        assert!(!re.is_match("window=1x1"));
    }

    #[test]
    fn quantifiers() {
        assert_eq!(m("ab*c", "ac"), Some((0, 2)));
        assert_eq!(m("ab*c", "abbbc"), Some((0, 5)));
        assert_eq!(m("ab+c", "ac"), None);
        assert_eq!(m("ab?c", "abc"), Some((0, 3)));
        assert_eq!(m("a{3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,}", "aaaa"), Some((0, 4)));
        assert_eq!(m("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(m("a{2,3}", "a"), None);
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^uid", "uid=1"), Some((0, 3)));
        assert_eq!(m("^uid", "xuid=1"), None);
        assert_eq!(m("\\d+$", "build 42"), Some((6, 8)));
        assert_eq!(m("\\d+$", "42 builds"), None);
        assert_eq!(m("^$", ""), Some((0, 0)));
    }

    #[test]
    fn leftmost_longest_of_leftmost() {
        // Leftmost match wins even if a later match is longer.
        assert_eq!(m("a+", "baaa aaaa"), Some((1, 4)));
        // Greedy: at the leftmost start, the longest end is reported.
        assert_eq!(m("a|aa|aaa", "aaa"), Some((0, 3)));
    }

    #[test]
    fn case_insensitive() {
        let re = Regex::new_ci("user-agent").unwrap();
        assert!(re.is_match("User-Agent: Mozilla"));
        assert!(re.is_match("USER-AGENT: x"));
        let ci_class = Regex::new_ci("[a-z]+").unwrap();
        assert_eq!(ci_class.find_str("ABC"), Some("ABC"));
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new("\\d+").unwrap();
        let hits: Vec<_> = re
            .find_iter("a1b22c333")
            .map(|m| (m.start, m.end))
            .collect();
        assert_eq!(hits, vec![(1, 2), (3, 5), (6, 9)]);
    }

    #[test]
    fn empty_match_progress() {
        let re = Regex::new("x*").unwrap();
        // Must terminate despite matching the empty string everywhere.
        let n = re.find_iter("abc").count();
        assert_eq!(n, 4); // before a, b, c, and at end
    }

    #[test]
    fn unicode_haystack() {
        let re = Regex::new("naïve").unwrap();
        assert!(re.is_match("a naïve plan"));
        let any = Regex::new("n.ïve").unwrap();
        assert!(any.is_match("naïve"));
    }

    #[test]
    fn linear_time_on_pathological_pattern() {
        // (a*)*b-style patterns kill backtrackers; the Pike VM shrugs.
        let re = Regex::new("(a*)*b").unwrap();
        let hay = "a".repeat(2000);
        assert!(!re.is_match(&hay));
    }

    #[test]
    fn compile_errors() {
        assert!(Regex::new("(").is_err());
        assert!(Regex::new(")").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("a{2,1}").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("a{999999999999}").is_err());
    }

    #[test]
    fn realistic_pii_patterns() {
        // The kinds of patterns the analysis crate actually uses.
        let ipv4 = Regex::new("(\\d{1,3}\\.){3}\\d{1,3}").unwrap();
        assert!(ipv4.is_match("client=10.0.0.1"));
        let cookie = Regex::new_ci("(^|[;&? ])(uid|userid|client_id|cid)=[A-Za-z0-9-]+").unwrap();
        assert!(cookie.is_match("sid=1; uid=abc-123"));
        let dom = Regex::new_ci("<(html|body|div|head)[ >]").unwrap();
        assert!(dom.is_match("<HTML ><body >"));
    }
}
