//! Literal prefilters extracted from the pattern AST.
//!
//! Before the NFA machinery runs at all, two cheap facts about a pattern
//! let most haystacks be rejected (or most of a haystack be skipped) with
//! nothing but substring scans:
//!
//! * **Required literals** — a set `S` of strings such that *every* match
//!   must contain at least one element of `S` inside its span. If no
//!   element of `S` occurs in the haystack, the pattern cannot match and
//!   neither the DFA nor the Pike VM needs to start.
//! * **Prefix literal** — a string every match must *start* with. The
//!   leftmost possible match start is therefore the leftmost occurrence of
//!   the prefix, so the scan can jump straight there (and the lazy DFA can
//!   re-synchronize to the next occurrence whenever it falls back to its
//!   bare start state).
//!
//! Extraction is conservative: whenever a node's contribution cannot be
//! proven (alternations without common structure, `{0,…}` repeats, negated
//! or multi-char classes), the corresponding filter is simply absent and
//! matching falls through to the engines. Case-insensitive patterns store
//! lowercased literals and search with an ASCII-case-folding scan.

use crate::ast::{Ast, CharClass};

/// Longest literal kept; longer runs are truncated (a substring of a
/// required literal is itself required, so truncation stays sound).
const MAX_LIT_LEN: usize = 24;
/// Largest required-literal set; beyond this the filter is dropped.
const MAX_REQUIRED: usize = 16;

/// The compiled prefilter for one pattern.
#[derive(Debug, Clone, Default)]
pub(crate) struct Prefilter {
    /// Every match contains at least one of these literals (when `Some`).
    pub required: Option<Vec<String>>,
    /// Every match starts with this literal (when `Some`).
    pub prefix: Option<String>,
    /// Literals are lowercased; search must fold ASCII case.
    pub ci: bool,
}

impl Prefilter {
    /// Extracts both filters from a parsed pattern.
    pub fn from_ast(ast: &Ast, ci: bool) -> Prefilter {
        let required = required_literals(ast).filter(|s| !s.is_empty());
        let mut prefix = String::new();
        collect_prefix(ast, &mut prefix);
        truncate_on_char_boundary(&mut prefix, MAX_LIT_LEN);
        Prefilter {
            required,
            prefix: if prefix.is_empty() {
                None
            } else {
                Some(prefix)
            },
            ci,
        }
    }

    /// `true` if the haystack (from `from`) can possibly contain a match.
    pub fn admits(&self, haystack: &str, from: usize) -> bool {
        match &self.required {
            None => true,
            Some(lits) => lits
                .iter()
                .any(|lit| find_lit(haystack, lit, self.ci, from).is_some()),
        }
    }

    /// Leftmost possible match start at or after `from`: the next prefix
    /// occurrence when a prefix literal exists, `from` otherwise. `None`
    /// means a prefix exists but never occurs again — no match is possible.
    pub fn earliest_start(&self, haystack: &str, from: usize) -> Option<usize> {
        match &self.prefix {
            None => Some(from),
            Some(p) => find_lit(haystack, p, self.ci, from),
        }
    }
}

/// If the class matches exactly one character (or exactly one ASCII letter
/// in both cases, as the case-insensitive compiler emits), returns that
/// character lowercased.
fn single_char(class: &CharClass) -> Option<char> {
    if class.negated {
        return None;
    }
    let mut ranges = class.ranges.clone();
    ranges.sort_unstable();
    ranges.dedup();
    match ranges.as_slice() {
        [(lo, hi)] if lo == hi => Some(*lo),
        // The case-insensitive widening turns `a` into {A, a}.
        [(a, b), (c, d)]
            if a == b && c == d && a.is_ascii_uppercase() && *c == a.to_ascii_lowercase() =>
        {
            Some(*c)
        }
        _ => None,
    }
}

fn truncate_on_char_boundary(s: &mut String, max: usize) {
    if s.len() > max {
        let mut cut = max;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        s.truncate(cut);
    }
}

/// Computes the required-literal set: `Some(S)` means every match contains
/// at least one element of `S`; `None` means no such guarantee was found.
fn required_literals(ast: &Ast) -> Option<Vec<String>> {
    match ast {
        Ast::Class(c) => single_char(c).map(|ch| vec![ch.to_string()]),
        Ast::Empty | Ast::AnyChar | Ast::StartAnchor | Ast::EndAnchor => None,
        Ast::Concat(items) => {
            // Any one item's requirement suffices; prefer the candidate
            // whose weakest literal is longest. Maximal runs of single
            // chars across adjacent items form longer literals.
            let mut best: Option<Vec<String>> = None;
            let mut run = String::new();
            let consider = |cand: Option<Vec<String>>, best: &mut Option<Vec<String>>| {
                if let Some(cand) = cand {
                    if score(&cand) > best.as_deref().map(score).unwrap_or(0) {
                        *best = Some(cand);
                    }
                }
            };
            for item in items {
                if let Ast::Class(c) = item {
                    if let Some(ch) = single_char(c) {
                        if run.len() < MAX_LIT_LEN {
                            run.push(ch);
                        }
                        continue;
                    }
                }
                if !run.is_empty() {
                    consider(Some(vec![std::mem::take(&mut run)]), &mut best);
                }
                consider(required_literals(item), &mut best);
            }
            if !run.is_empty() {
                consider(Some(vec![run]), &mut best);
            }
            best
        }
        Ast::Alt(branches) => {
            // Every branch must guarantee a literal; the union is required.
            let mut union: Vec<String> = Vec::new();
            for branch in branches {
                let lits = required_literals(branch)?;
                for lit in lits {
                    if !union.contains(&lit) {
                        union.push(lit);
                    }
                }
                if union.len() > MAX_REQUIRED {
                    return None;
                }
            }
            Some(union)
        }
        Ast::Repeat { node, min, .. } => {
            if *min >= 1 {
                required_literals(node)
            } else {
                None
            }
        }
    }
}

/// Score of a candidate set: the length of its weakest literal (a set is
/// only as selective as its shortest member).
fn score(lits: &[String]) -> usize {
    lits.iter().map(String::len).min().unwrap_or(0)
}

/// Appends the literal every match must start with; stops at the first
/// node whose leading text is not an exact single character.
fn collect_prefix(ast: &Ast, out: &mut String) {
    match ast {
        Ast::Class(c) => {
            if let Some(ch) = single_char(c) {
                out.push(ch);
            }
        }
        Ast::Concat(items) => {
            for (i, item) in items.iter().enumerate() {
                // A leading `^` does not consume text; skip it.
                if i == 0 && matches!(item, Ast::StartAnchor) {
                    continue;
                }
                let before = out.len();
                let exact = exact_prefix_item(item, out);
                if !exact || out.len() == before || out.len() >= MAX_LIT_LEN {
                    return;
                }
            }
        }
        // Only the first mandatory copy is a guaranteed prefix unless the
        // repeat is exact, and one copy is plenty for a prefilter.
        Ast::Repeat { node, min, .. } if *min >= 1 => collect_prefix(node, out),
        _ => {}
    }
}

/// Appends `item`'s text to `out` if the item matches exactly one fixed
/// string (so the prefix may continue past it). Returns `false` when the
/// prefix must stop after whatever was appended.
fn exact_prefix_item(item: &Ast, out: &mut String) -> bool {
    match item {
        Ast::Class(c) => match single_char(c) {
            Some(ch) => {
                out.push(ch);
                true
            }
            None => false,
        },
        Ast::Repeat { node, min, max } => {
            if *min == 0 {
                return false;
            }
            let before = out.len();
            if let Ast::Class(c) = node.as_ref() {
                if let Some(ch) = single_char(c) {
                    for _ in 0..(*min).min(MAX_LIT_LEN as u32) {
                        out.push(ch);
                    }
                    return *max == Some(*min) && out.len() > before;
                }
            }
            false
        }
        _ => false,
    }
}

/// Finds the leftmost occurrence of `lit` in `haystack[from..]`, returned
/// as an absolute byte offset. `ci` folds ASCII case byte-wise (literals
/// are stored lowercased). Occurrences of a valid-UTF-8 needle in valid
/// UTF-8 text always fall on char boundaries.
///
/// Public (with [`find_lit_scalar`]) so the differential fuzz suite can
/// race the SWAR skip loop against the byte-at-a-time reference.
pub fn find_lit(haystack: &str, lit: &str, ci: bool, from: usize) -> Option<usize> {
    if from > haystack.len() {
        return None;
    }
    if !ci {
        return haystack[from..].find(lit).map(|i| from + i);
    }
    let hay = haystack.as_bytes();
    let needle = lit.as_bytes();
    if needle.is_empty() {
        return Some(from);
    }
    if hay.len() < needle.len() {
        return None;
    }
    let first = needle[0];
    let last = hay.len() - needle.len();
    let mut i = from;
    while i <= last {
        let pos = i + find_byte_ci(&hay[i..], first)?;
        if pos > last {
            return None;
        }
        if hay[pos..pos + needle.len()].eq_ignore_ascii_case(needle) {
            return Some(pos);
        }
        i = pos + 1;
    }
    None
}

/// The obviously-correct byte-at-a-time reference form of [`find_lit`]:
/// candidate-compare at every offset, no prefilter, no SWAR. The
/// differential fuzz target races the two on random haystacks/needles.
pub fn find_lit_scalar(haystack: &str, lit: &str, ci: bool, from: usize) -> Option<usize> {
    let hay = haystack.as_bytes();
    let needle = lit.as_bytes();
    if from > hay.len() {
        return None;
    }
    if needle.is_empty() {
        return Some(from);
    }
    if hay.len() < needle.len() {
        return None;
    }
    for i in from..=hay.len() - needle.len() {
        let cand = &hay[i..i + needle.len()];
        let hit = if ci {
            cand.eq_ignore_ascii_case(needle)
        } else {
            cand == needle
        };
        if hit {
            return Some(i);
        }
    }
    None
}

/// Leftmost byte equal to `b` under ASCII case folding: the memchr-style
/// skip loop the case-insensitive scan rides. Eight haystack bytes per
/// iteration via SWAR zero-byte detection against both case variants of
/// `b`; the first flagged byte is always a true hit (borrow propagation in
/// the zero test only produces false positives *above* a true zero byte),
/// so `trailing_zeros` on the little-endian load is exact.
fn find_byte_ci(hay: &[u8], b: u8) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let lower = u64::from(b.to_ascii_lowercase()).wrapping_mul(LO);
    let upper = u64::from(b.to_ascii_uppercase()).wrapping_mul(LO);
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
        let xl = w ^ lower;
        let xu = w ^ upper;
        let hit = (xl.wrapping_sub(LO) & !xl & HI) | (xu.wrapping_sub(LO) & !xu & HI);
        if hit != 0 {
            return Some(base + (hit.trailing_zeros() / 8) as usize);
        }
        base += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|c| c.eq_ignore_ascii_case(&b))
        .map(|p| base + p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn filter(pat: &str, ci: bool) -> Prefilter {
        Prefilter::from_ast(&parse(pat, ci).unwrap(), ci)
    }

    #[test]
    fn literal_pattern_yields_prefix_and_required() {
        let f = filter("cookie", false);
        assert_eq!(f.prefix.as_deref(), Some("cookie"));
        assert_eq!(f.required.as_deref(), Some(&["cookie".to_string()][..]));
    }

    #[test]
    fn alternation_unions_required() {
        let f = filter("(landscape|portrait)", false);
        let req = f.required.unwrap();
        assert!(req.contains(&"landscape".to_string()));
        assert!(req.contains(&"portrait".to_string()));
        assert!(f.prefix.is_none());
    }

    #[test]
    fn concat_picks_longest_run() {
        let f = filter("user_id=[A-Za-z0-9_-]+", false);
        assert_eq!(f.prefix.as_deref(), Some("user_id="));
        assert_eq!(f.required.as_deref(), Some(&["user_id=".to_string()][..]));
    }

    #[test]
    fn optional_head_blocks_prefix_but_not_required() {
        let f = filter("x?screen=", false);
        assert!(f.prefix.is_none());
        assert_eq!(f.required.as_deref(), Some(&["screen=".to_string()][..]));
    }

    #[test]
    fn star_branch_defeats_required() {
        assert!(filter("a|b*", false).required.is_none());
        assert!(filter("[0-9]+", false).required.is_none());
    }

    #[test]
    fn anchored_pattern_still_has_prefix() {
        let f = filter("^uid=", false);
        assert_eq!(f.prefix.as_deref(), Some("uid="));
    }

    #[test]
    fn ci_literals_lowercase_and_fold() {
        let f = filter("Mozilla/", true);
        assert_eq!(f.prefix.as_deref(), Some("mozilla/"));
        assert!(f.admits("UA: MOZILLA/5.0", 0));
        assert!(!f.admits("UA: chrome", 0));
        assert_eq!(f.earliest_start("xx MoZiLLa/", 0), Some(3));
    }

    #[test]
    fn exact_repeat_extends_prefix() {
        let f = filter("a{3}b", false);
        assert_eq!(f.prefix.as_deref(), Some("aaab"));
        // Inexact repeat stops the prefix after the mandatory copies.
        let g = filter("a{2,5}b", false);
        assert_eq!(g.prefix.as_deref(), Some("aa"));
    }

    #[test]
    fn find_lit_is_absolute_and_resumable() {
        assert_eq!(find_lit("abcabc", "abc", false, 1), Some(3));
        assert_eq!(find_lit("abcabc", "abc", false, 4), None);
        assert_eq!(find_lit("ABCabc", "abc", true, 1), Some(3));
    }

    /// Byte-at-a-time reference for the SWAR skip loop.
    fn find_lit_ci_scalar(haystack: &str, lit: &str, from: usize) -> Option<usize> {
        let hay = haystack.as_bytes();
        let needle = lit.as_bytes();
        if from > hay.len() || hay.len() < needle.len() {
            return None;
        }
        (from..=hay.len() - needle.len())
            .find(|&i| hay[i..i + needle.len()].eq_ignore_ascii_case(needle))
    }

    #[test]
    fn swar_ci_scan_matches_scalar_reference() {
        // Haystack mixing case flips, near-miss bytes (`@`/`` ` `` differ
        // from letters only in bit 5), DEL/0x80 boundaries, and repeats.
        let hay = "uId=@UID uid`UID=\u{7f}\u{80}xxUiD=veryLongTailuid=";
        for lit in ["uid=", "uid", "u", "x", "@", "`", "veryl", "zzz"] {
            for from in 0..=hay.len() {
                assert_eq!(
                    find_lit(hay, lit, true, from),
                    find_lit_ci_scalar(hay, lit, from),
                    "lit={lit:?} from={from}"
                );
            }
        }
    }
}
