//! Pattern parser: text → AST.

use std::fmt;

/// Pattern compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Unbalanced or misplaced parenthesis.
    UnbalancedParen,
    /// Unterminated or malformed character class.
    BadClass,
    /// Quantifier with nothing to repeat, or malformed `{…}`.
    BadQuantifier,
    /// Repetition bound too large (cap: 1000).
    RepetitionTooLarge,
    /// Dangling `\` at end of pattern.
    DanglingEscape,
    /// Unknown escape sequence.
    UnknownEscape(char),
    /// A [`crate::RegexSet`] holds more patterns than its bitmask can
    /// track (cap: 64).
    SetTooLarge,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnbalancedParen => write!(f, "unbalanced parenthesis"),
            Error::BadClass => write!(f, "malformed character class"),
            Error::BadQuantifier => write!(f, "malformed or misplaced quantifier"),
            Error::RepetitionTooLarge => write!(f, "repetition bound exceeds 1000"),
            Error::DanglingEscape => write!(f, "dangling escape at end of pattern"),
            Error::UnknownEscape(c) => write!(f, "unknown escape \\{c}"),
            Error::SetTooLarge => write!(f, "regex set holds more than 64 patterns"),
        }
    }
}

impl std::error::Error for Error {}

/// Max bound in `{n,m}` — keeps compiled programs small.
const MAX_REPEAT: u32 = 1000;

/// A character matcher: inclusive ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// Sorted, non-overlapping inclusive ranges.
    pub ranges: Vec<(char, char)>,
    /// Negated class (`[^…]`).
    pub negated: bool,
}

impl CharClass {
    fn single(c: char) -> CharClass {
        CharClass {
            ranges: vec![(c, c)],
            negated: false,
        }
    }

    /// `true` if the class matches `c`.
    pub fn matches(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
        inside != self.negated
    }

    /// Widens the class so it matches case-insensitively.
    fn to_case_insensitive(&self) -> CharClass {
        let mut ranges = self.ranges.clone();
        for &(lo, hi) in &self.ranges {
            // Mirror any ASCII-letter overlap into the other case.
            let push = |ranges: &mut Vec<(char, char)>, lo: char, hi: char| {
                if lo <= hi {
                    ranges.push((lo, hi));
                }
            };
            let (lo8, hi8) = (lo as u32, hi as u32);
            // Lowercase overlap mirrored to uppercase.
            let l_lo = lo8.max('a' as u32);
            let l_hi = hi8.min('z' as u32);
            if l_lo <= l_hi {
                push(
                    &mut ranges,
                    char::from_u32(l_lo - 32).unwrap(),
                    char::from_u32(l_hi - 32).unwrap(),
                );
            }
            // Uppercase overlap mirrored to lowercase.
            let u_lo = lo8.max('A' as u32);
            let u_hi = hi8.min('Z' as u32);
            if u_lo <= u_hi {
                push(
                    &mut ranges,
                    char::from_u32(u_lo + 32).unwrap(),
                    char::from_u32(u_hi + 32).unwrap(),
                );
            }
        }
        CharClass {
            ranges,
            negated: self.negated,
        }
    }
}

/// Regex AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A character class (single chars are 1-range classes).
    Class(CharClass),
    /// `.` — any char except `\n`.
    AnyChar,
    /// `^`.
    StartAnchor,
    /// `$`.
    EndAnchor,
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Repetition `{min, max}`; `max == None` means unbounded.
    Repeat {
        /// Repeated node.
        node: Box<Ast>,
        /// Minimum count.
        min: u32,
        /// Maximum count (`None` = ∞).
        max: Option<u32>,
    },
}

/// Parses `pattern` into an AST; `ci` widens classes for case-insensitivity.
pub fn parse(pattern: &str, ci: bool) -> Result<Ast, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut p = Parser {
        chars: &chars,
        pos: 0,
        ci,
    };
    let ast = p.parse_alt()?;
    if p.pos != p.chars.len() {
        // Leftover input — must be an unmatched ')'.
        return Err(Error::UnbalancedParen);
    }
    Ok(ast)
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
    ci: bool,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_alt(&mut self) -> Result<Ast, Error> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some('|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, Error> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("one item"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, Error> {
        let atom = self.parse_atom()?;
        let quantifiable = !matches!(atom, Ast::StartAnchor | Ast::EndAnchor);
        match self.peek() {
            Some('*') => {
                self.bump();
                self.quantified(atom, 0, None, quantifiable)
            }
            Some('+') => {
                self.bump();
                self.quantified(atom, 1, None, quantifiable)
            }
            Some('?') => {
                self.bump();
                self.quantified(atom, 0, Some(1), quantifiable)
            }
            Some('{') => {
                // `{` only opens a quantifier if it parses as one; otherwise
                // treat it as a literal (common in real-world patterns).
                let save = self.pos;
                self.bump();
                match self.parse_braces() {
                    Ok((min, max)) => self.quantified(atom, min, max, quantifiable),
                    Err(Error::RepetitionTooLarge) => Err(Error::RepetitionTooLarge),
                    Err(_) => {
                        self.pos = save;
                        Ok(atom)
                    }
                }
            }
            _ => Ok(atom),
        }
    }

    fn quantified(
        &mut self,
        atom: Ast,
        min: u32,
        max: Option<u32>,
        quantifiable: bool,
    ) -> Result<Ast, Error> {
        if !quantifiable {
            return Err(Error::BadQuantifier);
        }
        if let Some(m) = max {
            if m < min {
                return Err(Error::BadQuantifier);
            }
        }
        Ok(Ast::Repeat {
            node: Box::new(atom),
            min,
            max,
        })
    }

    /// Parses the inside of `{…}` after the `{` has been consumed.
    fn parse_braces(&mut self) -> Result<(u32, Option<u32>), Error> {
        let min = self.parse_number()?;
        match self.bump() {
            Some('}') => Ok((min, Some(min))),
            Some(',') => {
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok((min, None));
                }
                let max = self.parse_number()?;
                if self.bump() != Some('}') {
                    return Err(Error::BadQuantifier);
                }
                Ok((min, Some(max)))
            }
            _ => Err(Error::BadQuantifier),
        }
    }

    fn parse_number(&mut self) -> Result<u32, Error> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if digits.is_empty() {
            return Err(Error::BadQuantifier);
        }
        let n: u64 = digits.parse().map_err(|_| Error::RepetitionTooLarge)?;
        if n > MAX_REPEAT as u64 {
            return Err(Error::RepetitionTooLarge);
        }
        Ok(n as u32)
    }

    fn parse_atom(&mut self) -> Result<Ast, Error> {
        match self.bump() {
            None => Ok(Ast::Empty),
            Some('(') => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(')') {
                    return Err(Error::UnbalancedParen);
                }
                Ok(inner)
            }
            Some('[') => {
                let class = self.parse_class()?;
                Ok(Ast::Class(self.maybe_ci(class)))
            }
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::StartAnchor),
            Some('$') => Ok(Ast::EndAnchor),
            Some('\\') => {
                let class = self.parse_escape()?;
                Ok(Ast::Class(self.maybe_ci(class)))
            }
            Some(c @ ('*' | '+' | '?')) => {
                let _ = c;
                Err(Error::BadQuantifier)
            }
            Some(')') => Err(Error::UnbalancedParen),
            Some(c) => Ok(Ast::Class(self.maybe_ci(CharClass::single(c)))),
        }
    }

    fn maybe_ci(&self, class: CharClass) -> CharClass {
        if self.ci {
            class.to_case_insensitive()
        } else {
            class
        }
    }

    fn parse_escape(&mut self) -> Result<CharClass, Error> {
        let c = self.bump().ok_or(Error::DanglingEscape)?;
        Ok(match c {
            'd' => CharClass {
                ranges: vec![('0', '9')],
                negated: false,
            },
            'D' => CharClass {
                ranges: vec![('0', '9')],
                negated: true,
            },
            'w' => CharClass {
                ranges: vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')],
                negated: false,
            },
            'W' => CharClass {
                ranges: vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')],
                negated: true,
            },
            's' => CharClass {
                ranges: vec![('\t', '\r'), (' ', ' ')],
                negated: false,
            },
            'S' => CharClass {
                ranges: vec![('\t', '\r'), (' ', ' ')],
                negated: true,
            },
            'n' => CharClass::single('\n'),
            't' => CharClass::single('\t'),
            'r' => CharClass::single('\r'),
            '.' | '[' | ']' | '(' | ')' | '{' | '}' | '*' | '+' | '?' | '|' | '^' | '$' | '\\'
            | '/' | '-' => CharClass::single(c),
            other => return Err(Error::UnknownEscape(other)),
        })
    }

    /// Parses the inside of `[…]` after the `[` has been consumed.
    fn parse_class(&mut self) -> Result<CharClass, Error> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut first = true;
        loop {
            let c = self.bump().ok_or(Error::BadClass)?;
            match c {
                ']' if !first => break,
                ']' if first => {
                    // A literal ']' as the first class member.
                    ranges.push((']', ']'));
                }
                '\\' => {
                    let sub = self.parse_escape()?;
                    if sub.negated {
                        // Negated escapes inside classes are out of scope.
                        return Err(Error::BadClass);
                    }
                    ranges.extend(sub.ranges);
                }
                lo => {
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).copied() != Some(']')
                    {
                        self.bump(); // consume '-'
                        let hi = self.bump().ok_or(Error::BadClass)?;
                        let hi = if hi == '\\' {
                            let sub = self.parse_escape()?;
                            match sub.ranges.as_slice() {
                                [(a, b)] if a == b => *a,
                                _ => return Err(Error::BadClass),
                            }
                        } else {
                            hi
                        };
                        if hi < lo {
                            return Err(Error::BadClass);
                        }
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
            }
            first = false;
        }
        if ranges.is_empty() {
            return Err(Error::BadClass);
        }
        ranges.sort_unstable();
        Ok(CharClass { ranges, negated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literal_concat() {
        let ast = parse("ab", false).unwrap();
        assert!(matches!(ast, Ast::Concat(ref v) if v.len() == 2));
    }

    #[test]
    fn parses_alternation_tree() {
        let ast = parse("a|b|c", false).unwrap();
        assert!(matches!(ast, Ast::Alt(ref v) if v.len() == 3));
    }

    #[test]
    fn class_matching() {
        let ast = parse("[a-cx]", false).unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches('a') && c.matches('b') && c.matches('x'));
            assert!(!c.matches('d'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn negated_class() {
        let ast = parse("[^0-9]", false).unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches('a'));
            assert!(!c.matches('5'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn literal_close_bracket_first() {
        let ast = parse("[]a]", false).unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches(']') && c.matches('a'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn dash_at_end_is_literal() {
        let ast = parse("[a-]", false).unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches('a') && c.matches('-'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn ci_widening() {
        let ast = parse("[a-c]", true).unwrap();
        if let Ast::Class(c) = ast {
            assert!(c.matches('B'));
        } else {
            panic!("expected class");
        }
    }

    #[test]
    fn brace_literal_fallback() {
        // `{` not followed by a valid quantifier is a literal.
        assert!(parse("a{x}", false).is_ok());
        // A bare '{' with no preceding atom is also a literal.
        assert!(parse("{2}", false).is_ok());
    }

    #[test]
    fn bad_inputs() {
        assert!(parse("(a", false).is_err());
        assert!(parse("a)", false).is_err());
        assert!(parse("[z-a]", false).is_err());
        assert!(parse("\\q", false).is_err());
        assert!(parse("a\\", false).is_err());
        assert!(parse("+", false).is_err());
    }
}
