//! Lazy DFA over the Thompson NFA.
//!
//! The Pike VM pays the full epsilon-closure cost at every input position.
//! This module trades that for a classic lazy-determinization scheme, the
//! same shape production regex engines use for their fast path:
//!
//! * The input alphabet is compressed into **equivalence classes** derived
//!   from every character-class boundary in the program (plus `\n` for
//!   `.`). Two characters in the same class are indistinguishable to every
//!   instruction, so transitions are computed per class, not per char.
//! * A DFA state is the epsilon-closed set of *consuming* NFA
//!   instructions, plus two acceptance flags (match reached now / match
//!   reached if the current position were end-of-input). States are
//!   interned; transitions are filled into a dense `state × class` table
//!   **on first use** and cached for every later scan.
//! * The cache is **bounded**: once [`MAX_STATES`] distinct states exist
//!   the DFA poisons itself and every subsequent call reports a fallback,
//!   letting the caller run the Pike VM instead. Decisions never change —
//!   only which engine computes them.
//!
//! The DFA answers existence only (`is_match`). Span resolution stays on
//! the Pike VM, which keeps leftmost-longest semantics in exactly one
//! place.

use crate::literal::{find_lit, Prefilter};
use crate::nfa::{Inst, Program};

/// State-cache bound; beyond this the DFA falls back to the Pike VM.
const MAX_STATES: usize = 512;

/// Sentinel for a transition not yet computed.
const UNSET: u32 = u32::MAX;

/// Counters describing one regex's lazy-DFA cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfaStats {
    /// Interned DFA states (including the two seed states).
    pub states: u64,
    /// Input equivalence classes for this pattern.
    pub classes: u64,
    /// Transitions computed lazily (cache misses).
    pub trans_computed: u64,
    /// Transitions served from the dense cache.
    pub trans_cached: u64,
    /// Completed DFA scans.
    pub scans: u64,
    /// Scans refused (cache poisoned) and answered by the Pike VM.
    pub fallbacks: u64,
}

impl DfaStats {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &DfaStats) {
        self.states += other.states;
        self.classes += other.classes;
        self.trans_computed += other.trans_computed;
        self.trans_cached += other.trans_cached;
        self.scans += other.scans;
        self.fallbacks += other.fallbacks;
    }
}

/// Character equivalence classes for one program.
#[derive(Debug)]
struct CharClasses {
    /// Sorted interval starts; class `i` covers `[starts[i], starts[i+1])`.
    starts: Vec<u32>,
    /// A representative character per class (`None` when the interval
    /// contains no valid scalar value — then no input maps to it either).
    reps: Vec<Option<char>>,
    /// Precomputed classes for ASCII inputs.
    ascii: [u16; 128],
}

impl CharClasses {
    fn build(prog: &Program) -> CharClasses {
        let mut starts: Vec<u32> = vec![0, '\n' as u32, '\n' as u32 + 1];
        for inst in &prog.insts {
            if let Inst::Class(class, _) = inst {
                for &(lo, hi) in &class.ranges {
                    starts.push(lo as u32);
                    starts.push(hi as u32 + 1);
                }
            }
        }
        starts.retain(|&s| s <= char::MAX as u32);
        starts.sort_unstable();
        starts.dedup();
        let mut reps = Vec::with_capacity(starts.len());
        for (i, &s) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(char::MAX as u32 + 1);
            // The first valid scalar in [s, end); skip the surrogate gap.
            let candidate = if (0xD800..0xE000).contains(&s) {
                0xE000
            } else {
                s
            };
            reps.push(if candidate < end {
                char::from_u32(candidate)
            } else {
                None
            });
        }
        let mut ascii = [0u16; 128];
        let classes = CharClasses {
            starts,
            reps,
            ascii,
        };
        for (b, slot) in ascii.iter_mut().enumerate() {
            *slot = classes.lookup_slow(b as u32);
        }
        CharClasses { ascii, ..classes }
    }

    fn lookup_slow(&self, cp: u32) -> u16 {
        (self.starts.partition_point(|&s| s <= cp) - 1) as u16
    }

    #[inline]
    fn lookup(&self, ch: char) -> u16 {
        let cp = ch as u32;
        if cp < 128 {
            self.ascii[cp as usize]
        } else {
            self.lookup_slow(cp)
        }
    }

    fn len(&self) -> usize {
        self.starts.len()
    }
}

/// One interned DFA state.
#[derive(Debug)]
struct State {
    /// Epsilon-closed consuming instructions, sorted.
    ips: Vec<u32>,
    /// A match ends exactly where this state was entered.
    accepting: bool,
    /// A match would end here if this position were end-of-input.
    accepting_at_end: bool,
}

/// The lazy DFA for one compiled program.
#[derive(Debug)]
pub(crate) struct LazyDfa {
    classes: CharClasses,
    states: Vec<State>,
    /// Intern map: (ips, flags) → state id.
    map: std::collections::HashMap<(Vec<u32>, bool, bool), u32>,
    /// Dense `state × class` table, lazily filled.
    trans: Vec<u32>,
    seed0: u32,
    seed_mid: u32,
    anchored: bool,
    poisoned: bool,
    stats: DfaStats,
}

impl LazyDfa {
    pub fn new(prog: &Program) -> LazyDfa {
        let classes = CharClasses::build(prog);
        let mut dfa = LazyDfa {
            classes,
            states: Vec::new(),
            map: std::collections::HashMap::new(),
            trans: Vec::new(),
            seed0: 0,
            seed_mid: 0,
            anchored: prog.anchored_start,
            poisoned: false,
            stats: DfaStats::default(),
        };
        dfa.stats.classes = dfa.classes.len() as u64;
        // Both seeds fit well under MAX_STATES; interning cannot fail here.
        dfa.seed0 = dfa
            .intern(prog, &[prog.start], true)
            .expect("seed state under cap");
        dfa.seed_mid = dfa
            .intern(prog, &[prog.start], false)
            .expect("seed state under cap");
        dfa
    }

    /// Epsilon closure of `gen`: the consuming instructions reachable
    /// without input, and whether `Match` was reached on the way.
    fn closure(prog: &Program, gen: &[usize], at_start: bool, at_end: bool) -> (Vec<u32>, bool) {
        let mut marks = vec![false; prog.insts.len()];
        let mut stack: Vec<usize> = gen.to_vec();
        let mut consuming: Vec<u32> = Vec::new();
        let mut matched = false;
        while let Some(ip) = stack.pop() {
            if std::mem::replace(&mut marks[ip], true) {
                continue;
            }
            match &prog.insts[ip] {
                Inst::Jmp(nx) => stack.push(*nx),
                Inst::Split(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Inst::StartAnchor(nx) => {
                    if at_start {
                        stack.push(*nx);
                    }
                }
                Inst::EndAnchor(nx) => {
                    if at_end {
                        stack.push(*nx);
                    }
                }
                Inst::Match => matched = true,
                Inst::Class(..) | Inst::AnyChar(..) => consuming.push(ip as u32),
            }
        }
        consuming.sort_unstable();
        consuming.dedup();
        (consuming, matched)
    }

    /// Interns the state generated by `gen`; `None` once the cap is hit.
    fn intern(&mut self, prog: &Program, gen: &[usize], at_start: bool) -> Option<u32> {
        let (ips, accepting) = Self::closure(prog, gen, at_start, false);
        let (_, accepting_at_end) = Self::closure(prog, gen, at_start, true);
        let key = (ips, accepting, accepting_at_end);
        if let Some(&sid) = self.map.get(&key) {
            return Some(sid);
        }
        if self.states.len() >= MAX_STATES {
            self.poisoned = true;
            return None;
        }
        let sid = self.states.len() as u32;
        self.states.push(State {
            ips: key.0.clone(),
            accepting,
            accepting_at_end,
        });
        self.trans
            .extend(std::iter::repeat_n(UNSET, self.classes.len()));
        self.map.insert(key, sid);
        self.stats.states = self.states.len() as u64;
        Some(sid)
    }

    /// Cached transition from `sid` over input class `cls`.
    fn transition(&mut self, prog: &Program, sid: u32, cls: u16) -> Option<u32> {
        let idx = sid as usize * self.classes.len() + cls as usize;
        let cached = self.trans[idx];
        if cached != UNSET {
            self.stats.trans_cached += 1;
            return Some(cached);
        }
        self.stats.trans_computed += 1;
        let rep = self.classes.reps[cls as usize];
        let mut gen: Vec<usize> = Vec::new();
        if let Some(rep) = rep {
            for &ip in &self.states[sid as usize].ips {
                match &prog.insts[ip as usize] {
                    Inst::Class(class, nx) if class.matches(rep) => gen.push(*nx),
                    Inst::AnyChar(nx) if rep != '\n' => gen.push(*nx),
                    _ => {}
                }
            }
        }
        // Unanchored search: every position is also a fresh start.
        if !self.anchored {
            gen.push(prog.start);
        }
        let next = self.intern(prog, &gen, false)?;
        self.trans[idx] = next;
        Some(next)
    }

    /// Existence check from byte offset `from` (absolute anchors).
    ///
    /// `Some(bool)` is the definitive answer; `None` means the state cache
    /// overflowed and the caller must rerun on the Pike VM. The optional
    /// `prefix` literal re-synchronizes the scan whenever it falls back to
    /// the bare unanchored seed state (no thread in flight ⇒ the next
    /// match can only start at the next prefix occurrence).
    pub fn is_match(
        &mut self,
        prog: &Program,
        haystack: &str,
        from: usize,
        prefix: Option<(&str, bool)>,
    ) -> Option<bool> {
        if self.poisoned {
            self.stats.fallbacks += 1;
            return None;
        }
        self.stats.scans += 1;
        let bytes = haystack.as_bytes();
        let mut sid = if from == 0 { self.seed0 } else { self.seed_mid };
        let mut pos = from;
        loop {
            let st = &self.states[sid as usize];
            if st.accepting {
                return Some(true);
            }
            if st.ips.is_empty() && !st.accepting_at_end {
                return Some(false);
            }
            if sid == self.seed_mid && !self.anchored {
                if let Some((lit, ci)) = prefix {
                    match find_lit(haystack, lit, ci, pos) {
                        Some(o) => pos = o,
                        // A prefixed pattern cannot match empty, and no
                        // candidate start remains.
                        None => return Some(false),
                    }
                }
            }
            if pos >= bytes.len() {
                break;
            }
            let b = bytes[pos];
            let (cls, adv) = if b < 0x80 {
                (self.classes.ascii[b as usize], 1)
            } else {
                let ch = haystack[pos..].chars().next().expect("char boundary");
                (self.classes.lookup(ch), ch.len_utf8())
            };
            pos += adv;
            sid = match self.transition(prog, sid, cls) {
                Some(s) => s,
                None => {
                    self.stats.fallbacks += 1;
                    return None;
                }
            };
        }
        let st = &self.states[sid as usize];
        Some(st.accepting || st.accepting_at_end)
    }

    pub fn stats(&self) -> DfaStats {
        self.stats
    }

    /// Used by `is_match` callers that want the prefilter decision to show
    /// up in the stats even when the DFA itself never ran.
    pub fn note_prefilter_reject(&mut self) {
        self.stats.scans += 1;
    }
}

/// Convenience wrapper used by tests: builds a fresh DFA and matches once.
#[cfg(test)]
fn dfa_match(pat: &str, ci: bool, hay: &str) -> bool {
    let ast = crate::ast::parse(pat, ci).unwrap();
    let prog = crate::nfa::compile(&ast);
    let mut dfa = LazyDfa::new(&prog);
    dfa.is_match(&prog, hay, 0, None)
        .unwrap_or_else(|| crate::vm::is_match(&prog, hay))
}

/// Re-exported so `lib.rs` can thread a prefilter through without leaking
/// `Prefilter` internals here.
pub(crate) fn prefix_of(p: &Prefilter) -> Option<(&str, bool)> {
    p.prefix.as_deref().map(|lit| (lit, p.ci))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::nfa::compile;

    fn agree(pat: &str, ci: bool, hay: &str) {
        let prog = compile(&parse(pat, ci).unwrap());
        let expected = crate::vm::is_match(&prog, hay);
        assert_eq!(
            dfa_match(pat, ci, hay),
            expected,
            "pattern {pat:?} ci={ci} hay={hay:?}"
        );
    }

    #[test]
    fn agrees_with_pike_vm_on_basics() {
        for (pat, hay) in [
            ("abc", "xxabcxx"),
            ("abc", "xxabx"),
            ("a|b", "ccc"),
            ("a|b", "cbc"),
            ("^ab", "abx"),
            ("^ab", "xab"),
            ("ab$", "xab"),
            ("ab$", "abx"),
            ("^$", ""),
            ("^$", "a"),
            ("", "anything"),
            ("a*", ""),
            ("a+", ""),
            ("(ab|cd)+x", "zzcdabx"),
            ("[a-c]{2,3}", "xbcax"),
            ("[^a]b", "ab"),
            ("[^a]b", "cb"),
            (".", "\n"),
            (".", "x"),
            ("a.c", "a\nc"),
        ] {
            agree(pat, false, hay);
        }
    }

    #[test]
    fn agrees_case_insensitively() {
        agree("mozilla/\\d", true, "User-Agent: MOZILLA/5.0");
        agree("mozilla/\\d", true, "User-Agent: Chrome/5.0");
    }

    #[test]
    fn prefix_skip_matches_plain_scan() {
        let prog = compile(&parse("needle[0-9]+", false).unwrap());
        let hay = format!("{}needle42", "hay ".repeat(200));
        let mut dfa = LazyDfa::new(&prog);
        assert_eq!(
            dfa.is_match(&prog, &hay, 0, Some(("needle", false))),
            Some(true)
        );
        let miss = "hay ".repeat(200);
        assert_eq!(
            dfa.is_match(&prog, &miss, 0, Some(("needle", false))),
            Some(false)
        );
        // The skip loop must never touch transitions for skipped bytes.
        assert!(dfa.stats().trans_computed < 40, "{:?}", dfa.stats());
    }

    #[test]
    fn transitions_are_cached_across_scans() {
        let prog = compile(&parse("ab+c", false).unwrap());
        let mut dfa = LazyDfa::new(&prog);
        dfa.is_match(&prog, "xxabbbcxx", 0, None);
        let computed_once = dfa.stats().trans_computed;
        dfa.is_match(&prog, "xxabbbcxx", 0, None);
        assert_eq!(dfa.stats().trans_computed, computed_once);
        assert!(dfa.stats().trans_cached > 0);
    }

    #[test]
    fn unicode_inputs_hit_the_slow_class_path() {
        agree("é+", false, "caféé");
        agree("é+", false, "cafe");
        agree(".", false, "é");
    }
}
