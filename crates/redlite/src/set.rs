//! `RegexSet`-style multi-pattern matching.
//!
//! The PII classifier asks the same question of every message: *which* of
//! N patterns match? Running N independent scans walks the haystack N
//! times. This module compiles all patterns into one combined Thompson
//! program whose `Match` instructions are tagged with their pattern index,
//! then runs a single Pike-VM pass that reports the full set of matching
//! patterns.
//!
//! Two properties keep the single pass cheap:
//!
//! * **Prefilter gating** — each pattern carries its own required-literal
//!   set ([`crate::literal`]); patterns whose literals are absent from the
//!   haystack are never seeded at all. On typical telemetry messages this
//!   leaves zero to two live patterns per scan.
//! * **Early exit** — once every gated-in pattern has matched, the scan
//!   stops; there is nothing left to learn.
//!
//! The set answers existence per pattern (no spans), so threads carry no
//! start offsets and the thread set is a plain instruction set.

use crate::ast;
use crate::literal::Prefilter;
use crate::nfa::{self, Inst, Program};
use crate::Error;

/// Hard cap so membership fits in a single `u64` bitmask.
const MAX_PATTERNS: usize = 64;

/// A compiled multi-pattern matcher.
#[derive(Debug, Clone)]
pub struct RegexSet {
    /// Per-pattern programs, kept for the reference path.
    progs: Vec<Program>,
    /// All programs concatenated with rebased targets.
    insts: Vec<Inst>,
    /// Entry point of pattern `i` inside `insts`.
    starts: Vec<usize>,
    /// For `Match` instructions: which pattern accepted (`u16::MAX`
    /// elsewhere).
    owner: Vec<u16>,
    prefilters: Vec<Prefilter>,
    patterns: Vec<String>,
    anchored: Vec<bool>,
}

/// Which patterns of a [`RegexSet`] matched one haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetMatches {
    mask: u64,
    len: usize,
}

impl SetMatches {
    /// `true` if pattern `i` matched.
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.mask & (1u64 << i) != 0
    }

    /// `true` if any pattern matched.
    pub fn any(&self) -> bool {
        self.mask != 0
    }

    /// Iterates the indices of matching patterns in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.mask;
        (0..self.len).filter(move |i| mask & (1u64 << i) != 0)
    }
}

impl RegexSet {
    /// Compiles a set of case-sensitive patterns.
    pub fn new<I, S>(patterns: I) -> Result<RegexSet, Error>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Self::with_specs(
            patterns
                .into_iter()
                .map(|p| (p.as_ref().to_string(), false)),
        )
    }

    /// Compiles a set where each pattern carries its own
    /// case-insensitivity flag — the PII library mixes both.
    pub fn with_specs<I>(specs: I) -> Result<RegexSet, Error>
    where
        I: IntoIterator<Item = (String, bool)>,
    {
        let mut set = RegexSet {
            progs: Vec::new(),
            insts: Vec::new(),
            starts: Vec::new(),
            owner: Vec::new(),
            prefilters: Vec::new(),
            patterns: Vec::new(),
            anchored: Vec::new(),
        };
        for (pattern, ci) in specs {
            let idx = set.progs.len();
            if idx >= MAX_PATTERNS {
                return Err(Error::SetTooLarge);
            }
            let tree = ast::parse(&pattern, ci)?;
            let prog = nfa::compile(&tree);
            let base = set.insts.len();
            set.starts.push(base + prog.start);
            for inst in &prog.insts {
                let rebased = match inst {
                    Inst::Class(c, nx) => Inst::Class(c.clone(), nx + base),
                    Inst::AnyChar(nx) => Inst::AnyChar(nx + base),
                    Inst::StartAnchor(nx) => Inst::StartAnchor(nx + base),
                    Inst::EndAnchor(nx) => Inst::EndAnchor(nx + base),
                    Inst::Split(a, b) => Inst::Split(a + base, b + base),
                    Inst::Jmp(nx) => Inst::Jmp(nx + base),
                    Inst::Match => Inst::Match,
                };
                set.owner.push(match inst {
                    Inst::Match => idx as u16,
                    _ => u16::MAX,
                });
                set.insts.push(rebased);
            }
            set.prefilters.push(Prefilter::from_ast(&tree, ci));
            set.anchored.push(prog.anchored_start);
            set.progs.push(prog);
            set.patterns.push(pattern);
        }
        Ok(set)
    }

    /// Number of patterns in the set.
    pub fn len(&self) -> usize {
        self.progs.len()
    }

    /// `true` if the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.progs.is_empty()
    }

    /// The original pattern strings, in index order.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// One-pass membership test: which patterns match `haystack`.
    pub fn matches(&self, haystack: &str) -> SetMatches {
        let len = self.len();
        // Gate: only patterns whose required literals occur can match.
        let mut active = 0u64;
        for (i, pf) in self.prefilters.iter().enumerate() {
            if pf.admits(haystack, 0) {
                active |= 1u64 << i;
            }
        }
        if active == 0 {
            return SetMatches { mask: 0, len };
        }

        let n = self.insts.len();
        let mut matched = 0u64;
        // The thread sets are reused across calls (and across sets) via a
        // thread-local: `matches` sits on the per-message classification
        // hot path, and two fresh allocations per call dominated the
        // pipeline's allocator counts.
        let (mut current, mut next) = SCRATCH
            .with(|s| s.take())
            .unwrap_or((ThreadSet::empty(), ThreadSet::empty()));
        current.reset(n);
        next.reset(n);
        let hay_len = haystack.len();
        let mut pos = 0usize;
        let mut chars = haystack.chars();
        loop {
            // Seed every still-unmatched active pattern at this position
            // (anchored patterns only at position 0).
            let pending = active & !matched;
            if pending == 0 {
                break;
            }
            for i in 0..len {
                if pending & (1u64 << i) != 0 && (pos == 0 || !self.anchored[i]) {
                    self.add_thread(&mut current, self.starts[i], pos, hay_len, &mut matched);
                }
            }
            let Some(ch) = chars.next() else { break };
            let next_pos = pos + ch.len_utf8();
            if current.list.is_empty() && active & !matched & self.unanchored_mask() == 0 {
                // Nothing in flight and every pending pattern is anchored:
                // no future seeds can help.
                break;
            }
            next.clear();
            for ti in 0..current.list.len() {
                let ip = current.list[ti];
                match &self.insts[ip] {
                    Inst::Class(class, nx) if class.matches(ch) => {
                        self.add_thread(&mut next, *nx, next_pos, hay_len, &mut matched);
                    }
                    Inst::AnyChar(nx) if ch != '\n' => {
                        self.add_thread(&mut next, *nx, next_pos, hay_len, &mut matched);
                    }
                    _ => {}
                }
            }
            std::mem::swap(&mut current, &mut next);
            pos = next_pos;
        }
        SCRATCH.with(|s| s.set(Some((current, next))));
        SetMatches { mask: matched, len }
    }

    /// Reference path: N independent Pike-VM scans. Exists so tests and
    /// benches can compare the one-pass engine against the naive shape.
    pub fn matches_reference(&self, haystack: &str) -> SetMatches {
        let mut mask = 0u64;
        for (i, prog) in self.progs.iter().enumerate() {
            if crate::vm::is_match(prog, haystack) {
                mask |= 1u64 << i;
            }
        }
        SetMatches {
            mask,
            len: self.len(),
        }
    }

    fn unanchored_mask(&self) -> u64 {
        let mut mask = 0u64;
        for (i, &a) in self.anchored.iter().enumerate() {
            if !a {
                mask |= 1u64 << i;
            }
        }
        mask
    }

    /// Epsilon-closure insert into the thread set; `Match` instructions
    /// record their owning pattern instead of joining the set.
    fn add_thread(
        &self,
        set: &mut ThreadSet,
        ip: usize,
        pos: usize,
        hay_len: usize,
        matched: &mut u64,
    ) {
        if std::mem::replace(&mut set.marks[ip], true) {
            return;
        }
        match &self.insts[ip] {
            Inst::Jmp(nx) => self.add_thread(set, *nx, pos, hay_len, matched),
            Inst::Split(a, b) => {
                self.add_thread(set, *a, pos, hay_len, matched);
                self.add_thread(set, *b, pos, hay_len, matched);
            }
            Inst::StartAnchor(nx) => {
                if pos == 0 {
                    self.add_thread(set, *nx, pos, hay_len, matched);
                }
            }
            Inst::EndAnchor(nx) => {
                if pos == hay_len {
                    self.add_thread(set, *nx, pos, hay_len, matched);
                }
            }
            Inst::Match => *matched |= 1u64 << self.owner[ip],
            Inst::Class(..) | Inst::AnyChar(..) => set.list.push(ip),
        }
    }
}

/// Live threads at one position: instruction indices, deduplicated.
struct ThreadSet {
    list: Vec<usize>,
    marks: Vec<bool>,
}

impl ThreadSet {
    fn empty() -> ThreadSet {
        ThreadSet {
            list: Vec::new(),
            marks: Vec::new(),
        }
    }

    /// Clears the set and (re)sizes the dedup marks for a program of `n`
    /// instructions. Mark capacity only ever grows, so a reused set
    /// allocates at most until it has seen the largest program.
    fn reset(&mut self, n: usize) {
        self.list.clear();
        self.marks.clear();
        self.marks.resize(n, false);
    }

    fn clear(&mut self) {
        self.list.clear();
        self.marks.iter_mut().for_each(|m| *m = false);
    }
}

thread_local! {
    /// Scratch thread-set pair for [`RegexSet::matches`]. `Cell<Option<..>>`
    /// (take/put-back) rather than `RefCell` so a re-entrant call — there
    /// are none today, but panics mid-scan must not poison the slot —
    /// simply falls back to fresh allocations.
    static SCRATCH: std::cell::Cell<Option<(ThreadSet, ThreadSet)>> =
        const { std::cell::Cell::new(None) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pats: &[&str]) -> RegexSet {
        RegexSet::new(pats).unwrap()
    }

    #[test]
    fn reports_the_full_membership_set() {
        let s = set(&["cookie", "uid=\\d+", "screen"]);
        let m = s.matches("page?cookie=1&uid=42");
        assert!(m.contains(0));
        assert!(m.contains(1));
        assert!(!m.contains(2));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn one_pass_agrees_with_reference() {
        let s = RegexSet::with_specs(vec![
            ("mozilla/\\d".to_string(), true),
            ("(^|[&?])ip=(\\d{1,3}\\.){3}\\d{1,3}".to_string(), false),
            ("^anchored".to_string(), false),
            ("end$".to_string(), false),
            ("(a|b)+c".to_string(), false),
        ])
        .unwrap();
        for hay in [
            "",
            "User-Agent: MOZILLA/5.0",
            "x?ip=10.0.0.1&y",
            "anchored text end",
            "not at start anchored",
            "ababac",
            "the end",
            "end",
        ] {
            assert_eq!(s.matches(hay), s.matches_reference(hay), "hay = {hay:?}");
        }
    }

    #[test]
    fn prefilter_gating_never_drops_matches() {
        // Patterns with no extractable literal are always seeded.
        let s = set(&["[0-9]+", "literal"]);
        let m = s.matches("42");
        assert!(m.contains(0));
        assert!(!m.contains(1));
    }

    #[test]
    fn empty_set_matches_nothing() {
        let s = RegexSet::new(Vec::<String>::new()).unwrap();
        assert!(!s.matches("anything").any());
    }

    #[test]
    fn rejects_more_than_sixty_four_patterns() {
        let pats: Vec<String> = (0..65).map(|i| format!("p{i}")).collect();
        assert!(RegexSet::new(pats).is_err());
    }
}
