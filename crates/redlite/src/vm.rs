//! Pike VM: executes the NFA over a haystack in O(len × insts).

use crate::nfa::{Inst, Program};
use crate::Match;

/// Fast-path existence check: like [`find`], but returns as soon as any
/// match is known to exist (no leftmost/longest resolution). Used by the
/// PII classifier, which only needs a boolean per pattern.
pub fn is_match(prog: &Program, haystack: &str) -> bool {
    let n = prog.insts.len();
    let mut current = ThreadSet::new(n);
    let mut next = ThreadSet::new(n);
    let mut pos = 0usize;
    let mut chars = haystack.chars();
    loop {
        if !prog.anchored_start || pos == 0 {
            add_thread(prog, &mut current, prog.start, pos, haystack);
        }
        if current.accepted_start.is_some() {
            return true;
        }
        let Some(ch) = chars.next() else { break };
        let next_pos = pos + ch.len_utf8();
        if current.is_empty() && prog.anchored_start {
            return false;
        }
        next.clear();
        for ti in 0..current.list.len() {
            let (ip, start) = current.list[ti];
            match &prog.insts[ip] {
                Inst::Class(class, nx) if class.matches(ch) => {
                    add_thread_with_start(prog, &mut next, *nx, next_pos, haystack, start);
                }
                Inst::AnyChar(nx) if ch != '\n' => {
                    add_thread_with_start(prog, &mut next, *nx, next_pos, haystack, start);
                }
                _ => {}
            }
        }
        std::mem::swap(&mut current, &mut next);
        pos = next_pos;
    }
    current.accepted_start.is_some()
}

/// Finds the leftmost match at or after byte offset `from`.
///
/// Semantics: leftmost start; at that start, the longest end reachable
/// (greedy). This matches what the PII pattern library expects.
pub fn find(prog: &Program, haystack: &str, from: usize) -> Option<Match> {
    let n = prog.insts.len();
    let mut current: ThreadSet = ThreadSet::new(n);
    let mut next: ThreadSet = ThreadSet::new(n);

    // Position iteration: we walk char boundaries from `from` to len.
    let tail = &haystack[from.min(haystack.len())..];
    let mut match_found: Option<Match> = None;

    // Char positions: (byte_offset, char) plus a virtual end position.
    let mut pos = from;
    let mut chars = tail.chars();

    // Seed the initial threads at `from` (and at every later position unless
    // anchored or a match has been found — leftmost semantics).
    loop {
        let at_start = pos == 0;
        if match_found.is_none() && (!prog.anchored_start || at_start || from == pos && from > 0) {
            // Note: for anchored patterns, only seed at position 0 (or at
            // `from` when the caller explicitly resumes — used by find_iter;
            // resuming an anchored pattern mid-string can only match if
            // from == 0, so the extra seed is harmless).
            if !prog.anchored_start || at_start {
                add_thread(prog, &mut current, prog.start, pos, haystack);
            }
        }

        let c = chars.next();
        let next_pos = pos + c.map(char::len_utf8).unwrap_or(0);

        // Check for accepting threads at this position *before* consuming:
        // threads reach Match via epsilon closure inside add_thread, flagged
        // in `current.accepted`.
        if let Some(start) = current.accepted_start.take() {
            let candidate = Match { start, end: pos };
            match_found = Some(better(match_found, candidate));
        }

        let ch = match c {
            Some(ch) => ch,
            None => break,
        };

        // If we already have a match and no live threads can extend it,
        // stop early.
        if current.is_empty() {
            if match_found.is_some() {
                break;
            }
            if prog.anchored_start && pos > 0 {
                break;
            }
        }

        // Step every live thread over `ch`.
        next.clear();
        for ti in 0..current.list.len() {
            let (ip, start) = current.list[ti];
            match &prog.insts[ip] {
                Inst::Class(class, nx) if class.matches(ch) => {
                    add_thread_with_start(prog, &mut next, *nx, next_pos, haystack, start);
                }
                Inst::AnyChar(nx) if ch != '\n' => {
                    add_thread_with_start(prog, &mut next, *nx, next_pos, haystack, start);
                }
                // Epsilon instructions were resolved by the closure in
                // add_thread; only consuming instructions appear here.
                _ => {}
            }
        }
        std::mem::swap(&mut current, &mut next);
        // Leftmost bias: once a match exists, do not seed new starts.
        pos = next_pos;
    }

    // Final position: accepted threads at end of input.
    if let Some(start) = current.accepted_start {
        let candidate = Match {
            start,
            end: haystack.len(),
        };
        match_found = Some(better(match_found, candidate));
    }
    match_found
}

/// Prefers the leftmost start; among equal starts, the longest end.
fn better(best: Option<Match>, candidate: Match) -> Match {
    match best {
        None => candidate,
        Some(b) => {
            if candidate.start < b.start || (candidate.start == b.start && candidate.end > b.end) {
                candidate
            } else {
                b
            }
        }
    }
}

/// A set of live threads at one input position, deduplicated by instruction.
struct ThreadSet {
    /// (instruction, match-start) pairs in priority order.
    list: Vec<(usize, usize)>,
    /// Dedup marks, one per instruction.
    marks: Vec<bool>,
    /// If some thread reached `Match` during closure, the best (leftmost)
    /// start offset that did so.
    accepted_start: Option<usize>,
}

impl ThreadSet {
    fn new(n: usize) -> ThreadSet {
        ThreadSet {
            list: Vec::with_capacity(n),
            marks: vec![false; n],
            accepted_start: None,
        }
    }

    fn clear(&mut self) {
        self.list.clear();
        self.marks.iter_mut().for_each(|m| *m = false);
        self.accepted_start = None;
    }

    fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

fn add_thread(prog: &Program, set: &mut ThreadSet, ip: usize, pos: usize, haystack: &str) {
    add_thread_with_start(prog, set, ip, pos, haystack, pos);
}

/// Adds `ip` (and its epsilon closure) to the set with match-start `start`.
fn add_thread_with_start(
    prog: &Program,
    set: &mut ThreadSet,
    ip: usize,
    pos: usize,
    haystack: &str,
    start: usize,
) {
    if set.marks[ip] {
        return;
    }
    set.marks[ip] = true;
    match &prog.insts[ip] {
        Inst::Jmp(nx) => add_thread_with_start(prog, set, *nx, pos, haystack, start),
        Inst::Split(a, b) => {
            add_thread_with_start(prog, set, *a, pos, haystack, start);
            add_thread_with_start(prog, set, *b, pos, haystack, start);
        }
        Inst::StartAnchor(nx) => {
            if pos == 0 {
                add_thread_with_start(prog, set, *nx, pos, haystack, start);
            }
        }
        Inst::EndAnchor(nx) => {
            if pos == haystack.len() {
                add_thread_with_start(prog, set, *nx, pos, haystack, start);
            }
        }
        Inst::Match => {
            let better = match set.accepted_start {
                None => true,
                Some(s) => start < s,
            };
            if better {
                set.accepted_start = Some(start);
            }
        }
        Inst::Class(..) | Inst::AnyChar(..) => {
            set.list.push((ip, start));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::nfa::compile;

    fn run(pat: &str, hay: &str) -> Option<(usize, usize)> {
        let prog = compile(&parse(pat, false).unwrap());
        find(&prog, hay, 0).map(|m| (m.start, m.end))
    }

    #[test]
    fn epsilon_cycle_terminates() {
        // (a*)* has an epsilon cycle; the mark set must break it.
        assert_eq!(run("(a*)*", "aaa"), Some((0, 3)));
    }

    #[test]
    fn leftmost_start_priority() {
        assert_eq!(run("a|ba", "ba"), Some((0, 2)));
    }

    #[test]
    fn greedy_end_at_same_start() {
        assert_eq!(run("ab|abc", "abc"), Some((0, 3)));
    }

    #[test]
    fn resume_from_offset() {
        let prog = compile(&parse("a+", false).unwrap());
        let m = find(&prog, "aa baa", 2).unwrap();
        assert_eq!((m.start, m.end), (4, 6));
    }

    #[test]
    fn anchored_resume_fails_midstring() {
        let prog = compile(&parse("^a", false).unwrap());
        assert!(find(&prog, "ba", 1).is_none());
    }
}
