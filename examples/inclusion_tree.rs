//! Figure 2, live: DOM tree vs inclusion tree.
//!
//! Builds the paper's example page — a publisher including its own script,
//! an ads script, and a tracker script, where the ads script dynamically
//! includes a second script that opens `ws://adnet/data.ws` — then prints
//! the *syntactic* DOM view next to the *semantic* inclusion tree the
//! methodology reconstructs from CDP events.
//!
//! ```sh
//! cargo run --example inclusion_tree
//! ```

use sockscope::browser::{Browser, BrowserConfig, BrowserEra, ExtensionHost};
use sockscope::inclusion::InclusionTree;
use sockscope::webmodel::{
    dom::figure2_dom, host::StaticHost, Action, Page, ReceivedItem, ScriptBehavior, ScriptRef,
    SentItem, WsExchange, WsServerProfile,
};

fn build_web() -> StaticHost {
    let mut host = StaticHost::new();
    let mut page = Page::new("http://pub.example/index.html", "Publisher");
    page.scripts = vec![
        ScriptRef::Remote("http://pub.example/script.js".into()),
        ScriptRef::Remote("http://ads.example/script.js".into()),
        ScriptRef::Remote("http://tracker.example/script.js".into()),
    ];
    page.dom = Some(figure2_dom());
    host.add_page(page);
    host.add_script("http://pub.example/script.js", ScriptBehavior::inert());
    host.add_script(
        "http://ads.example/script.js",
        ScriptBehavior::inert()
            .then(Action::IncludeScript {
                url: "http://ads.example/script2.js".into(),
            })
            .then(Action::FetchImage {
                url: "http://ads.example/image.img".into(),
                sent: vec![],
            }),
    );
    // Source code for ads/script.js (per the figure):
    //   let ws = new WebSocket("ws://adnet/data.ws", ...);
    //   ws.onopen = function(e) { ws.send("..."); }
    host.add_script(
        "http://ads.example/script2.js",
        ScriptBehavior::inert().then(Action::OpenWebSocket {
            url: "ws://adnet.example/data.ws".into(),
            exchanges: vec![WsExchange {
                send: vec![SentItem::Cookie, SentItem::UserId],
                receive: vec![ReceivedItem::Json],
            }],
        }),
    );
    host.add_script("http://tracker.example/script.js", ScriptBehavior::inert());
    host.add_ws_server("ws://adnet.example/data.ws", WsServerProfile::accepting());
    host
}

fn main() {
    let web = build_web();
    let browser = Browser::new(
        &web,
        ExtensionHost::stock(BrowserEra::PreChrome58),
        BrowserConfig::default(),
    );
    let visit = browser
        .visit("http://pub.example/index.html")
        .expect("visit");
    let tree = InclusionTree::build("http://pub.example/index.html", &visit.events);

    println!("=== DOM tree (syntactic view) ===");
    println!("{}", figure2_dom().to_html());
    println!();
    println!("The DOM shows three *sibling* <script> tags. It cannot tell you");
    println!("which script opened the WebSocket — §3.1's point exactly.");
    println!();
    println!("=== Inclusion tree (semantic view, from CDP events) ===");
    print!("{}", tree.ascii());
    println!();

    let socket = tree.websockets().next().expect("one socket");
    let chain: Vec<&str> = tree
        .chain(socket.id)
        .iter()
        .map(|n| n.url.as_str())
        .collect();
    println!("WebSocket attribution chain: {}", chain.join("  ->  "));
    println!();
    println!("=== The socket's transcript (real RFC 6455 frames) ===");
    let ws = socket.ws.as_ref().expect("transcript");
    println!(
        "handshake request begins: {:?}",
        ws.handshake_request.lines().next().unwrap_or_default()
    );
    for payload in &ws.sent {
        println!("sent:     {:?}", payload.as_text().unwrap_or("<binary>"));
    }
    for payload in &ws.received {
        println!("received: {:?}", payload.as_text().unwrap_or("<binary>"));
    }
}
