//! Figure 4: Lockerdome-style ad delivery over WebSockets.
//!
//! Lockerdome did not push ad *images* through sockets — it pushed URLs to
//! images on `cdn1.lockerdome.com` (absent from EasyList) plus captions and
//! dimensions, letting the page fetch unblockable creatives. This example
//! reproduces the flow and recovers the three clickbait ads of Figure 4
//! from the raw socket frames.
//!
//! ```sh
//! cargo run --example clickbait_ads
//! ```

use sockscope::analysis::PiiLibrary;
use sockscope::browser::{Browser, BrowserConfig, BrowserEra, ExtensionHost};
use sockscope::inclusion::InclusionTree;
use sockscope::webmodel::{
    host::StaticHost, Action, Page, ReceivedItem, ScriptBehavior, ScriptRef, SentItem, WsExchange,
    WsServerProfile,
};

fn main() {
    let mut web = StaticHost::new();
    let mut page = Page::new("http://longtail-blog.example/", "Blog");
    page.scripts = vec![ScriptRef::Remote(
        "https://cdn2.lockerdome.com/lockerdome.js".into(),
    )];
    web.add_page(page);
    web.add_script(
        "https://cdn2.lockerdome.com/lockerdome.js",
        ScriptBehavior::inert().then(Action::OpenWebSocket {
            url: "wss://api.lockerdome.com/socket".into(),
            exchanges: vec![WsExchange {
                send: vec![SentItem::Cookie],
                receive: vec![ReceivedItem::AdUrls],
            }],
        }),
    );
    web.add_ws_server(
        "wss://api.lockerdome.com/socket",
        WsServerProfile::accepting(),
    );

    let browser = Browser::new(
        &web,
        ExtensionHost::stock(BrowserEra::PreChrome58),
        BrowserConfig::default(),
    );
    let visit = browser
        .visit("http://longtail-blog.example/")
        .expect("visit");
    let tree = InclusionTree::build("http://longtail-blog.example/", &visit.events);
    let socket = tree.websockets().next().expect("lockerdome socket");
    let response = socket.ws.as_ref().unwrap().received[0]
        .as_text()
        .expect("JSON response")
        .to_string();

    println!(
        "raw socket response ({} bytes of JSON):\n{response}\n",
        response.len()
    );

    let lib = PiiLibrary::new();
    let ads = lib.extract_ad_urls(&response);
    println!("ads recovered from the frame (Figure 4):");
    for (url, caption) in &ads {
        println!("  {caption:?}");
        println!("      creative: {url}");
    }
    assert_eq!(ads.len(), 3);
    assert!(ads.iter().all(|(u, _)| u.contains("cdn1.")));
    println!();
    println!("The creatives live on cdn1.lockerdome.com — a host EasyList did");
    println!("not cover — so even image-level blocking missed them, and the");
    println!("WRB hid the socket that delivered their URLs. \"Shady ad networks");
    println!("cater to shady advertisers.\"");
}
