//! The webRequest Bug, demonstrated end to end.
//!
//! One publisher page carries an ad loader served **first-party** (the
//! standard anti-blocker tactic — the script itself matches no filter)
//! which (a) loads an ad image from the ad network over HTTP and (b) opens
//! a WebSocket to the same network. An ad blocker whose rules fully cover
//! the network is installed. We visit the page three times:
//!
//! * Chrome <58 — the HTTP ad is blocked, **the socket sails through**;
//! * Chrome 58+ — both are blocked;
//! * Chrome 58+ with an extension that kept `http://*`-only URL filters —
//!   the socket slips through again (Franken et al.'s finding, §5).
//!
//! ```sh
//! cargo run --example wrb_circumvention
//! ```

use sockscope::browser::{AdBlockerExtension, Browser, BrowserConfig, BrowserEra, ExtensionHost};
use sockscope::filterlist::Engine;
use sockscope::webmodel::{
    host::StaticHost, Action, Page, ReceivedItem, ScriptBehavior, ScriptRef, SentItem, WsExchange,
    WsServerProfile,
};

fn build_web() -> StaticHost {
    let mut host = StaticHost::new();
    let mut page = Page::new("http://news.example/", "News");
    // The loader rides the publisher's own domain, so no list rule can
    // touch it without breaking the site.
    page.scripts = vec![ScriptRef::Remote(
        "http://news.example/assets/engagement.js".into(),
    )];
    host.add_page(page);
    host.add_script(
        "http://news.example/assets/engagement.js",
        ScriptBehavior::inert()
            .then(Action::FetchImage {
                url: "http://shadynet.example/banner/728x90/ad_top.png".into(),
                sent: vec![SentItem::Cookie],
            })
            .then(Action::OpenWebSocket {
                url: "ws://shadynet.example/serve-ads".into(),
                exchanges: vec![WsExchange {
                    send: vec![SentItem::Cookie, SentItem::UserId],
                    receive: vec![ReceivedItem::AdUrls],
                }],
            }),
    );
    host.add_ws_server(
        "ws://shadynet.example/serve-ads",
        WsServerProfile::accepting(),
    );
    host
}

fn blocker() -> AdBlockerExtension {
    // The network is fully listed — including a websocket rule.
    let (engine, errs) = Engine::parse("||shadynet.example^\n||shadynet.example^$websocket");
    assert!(errs.is_empty());
    AdBlockerExtension::new("adblock", engine)
}

fn visit(web: &StaticHost, era: BrowserEra, legacy: bool) -> (usize, usize) {
    let mut ext = blocker();
    if legacy {
        ext = ext.with_legacy_filters();
    }
    let browser = Browser::new(
        web,
        ExtensionHost::stock(era).install(ext),
        BrowserConfig::default(),
    );
    let v = browser.visit("http://news.example/").expect("visit");
    (v.websocket_count(), v.blocked.len())
}

fn main() {
    let web = build_web();

    println!("page: http://news.example/  (ad network fully covered by the blocker's rules)\n");
    let cases = [
        (
            "Chrome <58, blocker installed (WRB live)",
            BrowserEra::PreChrome58,
            false,
        ),
        (
            "Chrome 58+, blocker installed (patched)",
            BrowserEra::PostChrome58,
            false,
        ),
        (
            "Chrome 58+, blocker with http://*-only filters",
            BrowserEra::PostChrome58,
            true,
        ),
    ];
    for (label, era, legacy) in cases {
        let (sockets, blocked) = visit(&web, era, legacy);
        let verdict = if sockets > 0 {
            "CIRCUMVENTED - ads flow over the socket"
        } else {
            "protected"
        };
        println!(
            "{label:<48} sockets opened: {sockets}   requests blocked: {blocked}   => {verdict}"
        );
    }
    // Make the example self-checking: the WRB and the legacy-filter
    // mistake must both leak the socket; the patched browser must not.
    let (pre, _) = visit(&web, BrowserEra::PreChrome58, false);
    let (post, _) = visit(&web, BrowserEra::PostChrome58, false);
    let (legacy, _) = visit(&web, BrowserEra::PostChrome58, true);
    assert_eq!(pre, 1, "WRB must let the socket through");
    assert_eq!(post, 0, "patched browser must block the socket");
    assert_eq!(legacy, 1, "http://*-only filters never see sockets");
    println!();
    println!("This is the mechanism behind the 2016 reports of unblockable ads");
    println!("(AdBlock Plus #1727, uBlock #1936, the Pornhub incident) and the");
    println!("reason the paper's measured ad networks could serve Figure 4's");
    println!("clickbait through blockers until April 19, 2017.");
}
