//! The sans-IO WebSocket stack over a **real TCP connection**.
//!
//! Everything else in this repository drives `sockscope-wsproto` through an
//! in-memory transport; this example proves the same state machines speak
//! RFC 6455 over actual sockets: a server thread on `127.0.0.1` accepts an
//! upgrade and echoes messages, a client connects, round-trips a tracking
//! payload and a 64 KiB fragmented "DOM", pings, and closes cleanly.
//!
//! ```sh
//! cargo run --example loopback_echo
//! ```

use sockscope::wsproto::{
    connection::State, ClientHandshake, CloseCode, Connection, Event, Message, Role,
    ServerHandshake,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// Pumps one side of the connection over a TCP stream until `done`.
fn pump_io(conn: &mut Connection, stream: &mut TcpStream) -> std::io::Result<Vec<Event>> {
    let mut events = Vec::new();
    let mut buf = [0u8; 4096];
    stream.set_nonblocking(true)?;
    loop {
        // Flush outgoing bytes.
        let out = conn.take_outgoing();
        if !out.is_empty() {
            stream.write_all(&out)?;
        }
        // Drain events.
        while let Some(ev) = conn.poll().expect("protocol error") {
            let done = matches!(ev, Event::Closed(_));
            events.push(ev);
            if done {
                return Ok(events);
            }
        }
        // Read more bytes.
        match stream.read(&mut buf) {
            Ok(0) => return Ok(events),
            Ok(n) => conn.feed(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if matches!(conn.state(), State::Closed | State::Failed) {
                    return Ok(events);
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

fn server(listener: TcpListener) -> std::io::Result<()> {
    let (mut stream, _) = listener.accept()?;
    // Read the upgrade request.
    let mut req = Vec::new();
    let mut buf = [0u8; 1024];
    while !req.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut buf)?;
        req.extend_from_slice(&buf[..n]);
    }
    let hs = ServerHandshake::accept_request(&req).expect("valid upgrade");
    println!(
        "[server] upgrade from UA {:?}",
        hs.request.get("user-agent").unwrap_or("?")
    );
    stream.write_all(&hs.response_bytes(None))?;

    let mut conn = Connection::new(Role::Server, 0xBEEF);
    let mut echoed = 0;
    stream.set_nonblocking(true)?;
    let mut rbuf = [0u8; 4096];
    loop {
        let out = conn.take_outgoing();
        if !out.is_empty() {
            stream.write_all(&out)?;
        }
        while let Some(ev) = conn.poll().expect("server protocol error") {
            match ev {
                Event::Message(Message::Text(t)) => {
                    echoed += 1;
                    println!("[server] echoing {} bytes", t.len());
                    conn.send_text(&t).expect("echo");
                }
                Event::Message(Message::Binary(b)) => {
                    echoed += 1;
                    conn.send_binary(&b).expect("echo");
                }
                Event::Closed(reason) => {
                    println!("[server] closed: {:?} after {echoed} echoes", reason.code);
                    let out = conn.take_outgoing();
                    if !out.is_empty() {
                        stream.write_all(&out)?;
                    }
                    return Ok(());
                }
                Event::Ping(_) | Event::Pong(_) => {}
            }
        }
        match stream.read(&mut rbuf) {
            Ok(0) => return Ok(()),
            Ok(n) => conn.feed(&rbuf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
}

fn main() -> std::io::Result<()> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let server_thread = std::thread::spawn(move || server(listener));

    // ---- Client side. ----
    let mut stream = TcpStream::connect(addr)?;
    let hs = ClientHandshake::new(addr.to_string(), "/echo", 0x1234)
        .origin("http://pub.example")
        .user_agent("sockscope-loopback/1.0")
        .cookies("uid=421");
    stream.write_all(&hs.request_bytes())?;
    let mut resp = Vec::new();
    let mut buf = [0u8; 1024];
    while !resp.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut buf)?;
        resp.extend_from_slice(&buf[..n]);
    }
    hs.validate_response(&resp)
        .expect("101 with valid accept key");
    println!("[client] handshake complete (Sec-WebSocket-Accept verified)");

    let mut conn = Connection::new(Role::Client, 0x5EED);
    conn.send_text("cookie=uid=421&screen=1920x1080")
        .expect("send");
    let fake_dom = format!("dom=<html>{}</html>", "x".repeat(65_536));
    conn.send_text_fragmented(&fake_dom, 8 * 1024)
        .expect("send fragmented");
    conn.send_ping(b"hb").expect("ping");
    conn.close(CloseCode::Normal, "done");

    let events = pump_io(&mut conn, &mut stream)?;
    let mut echoes = 0;
    for ev in &events {
        match ev {
            Event::Message(m) => {
                echoes += 1;
                println!("[client] echo {} bytes back", m.len());
            }
            Event::Pong(p) => println!("[client] pong {p:?}"),
            Event::Closed(r) => println!("[client] close acknowledged: {:?}", r.code),
            Event::Ping(_) => {}
        }
    }
    assert_eq!(echoes, 2, "both messages echoed over real TCP");
    server_thread
        .join()
        .expect("server thread")
        .expect("server ok");
    println!("loopback echo over real TCP: OK");
    Ok(())
}
