//! Quickstart: run a miniature version of the whole study and print the
//! headline findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The paper crawled ~100K sites four times; this example uses 1,500 sites
//! so it finishes in seconds. Every incidence parameter is a per-site
//! probability, so the *shapes* (who uses WebSockets, who quits after the
//! Chrome 58 patch, what gets exfiltrated) are preserved at small scale.

use sockscope::{StudyConfig, StudyReport};

fn main() {
    let config = StudyConfig {
        n_sites: 1_500,
        ..StudyConfig::default()
    };
    eprintln!(
        "crawling {} sites x 4 crawls (2 pre-patch, 2 post-patch)...",
        config.n_sites
    );
    let report = StudyReport::run(&config);

    // Table 1: the headline result.
    println!("{}", report.table1.render());

    // The before/after story in one sentence.
    let pre = report.table1.rows[0]
        .unique_aa_initiators
        .max(report.table1.rows[1].unique_aa_initiators);
    let post = report.table1.rows[2]
        .unique_aa_initiators
        .min(report.table1.rows[3].unique_aa_initiators);
    println!("A&A initiator collapse after the Chrome 58 patch: {pre} -> {post} unique domains");
    println!(
        "vanished initiators include: {:?}",
        report
            .textstats
            .vanished_initiators
            .iter()
            .take(6)
            .collect::<Vec<_>>()
    );

    // What was being sent while the bug was live.
    println!();
    println!(
        "cookies rode {:.0}% of A&A sockets; {:.1}% carried full fingerprint bundles; {:.1}% uploaded the DOM",
        report.table5.sent_row("Cookie").map(|r| r.ws_pct).unwrap_or(0.0),
        report.textstats.pct_fingerprinting,
        report.textstats.pct_dom_exfiltration,
    );
    println!(
        "DOM uploads went to: {:?} (paper: Hotjar, LuckyOrange, TruConversion)",
        report.textstats.dom_receivers
    );
}
