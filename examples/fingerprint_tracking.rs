//! The DoubleClick → 33across fingerprinting pipeline (§4.3).
//!
//! Before the patch, DoubleClick's tag opened WebSockets to 33across and
//! shipped a browser-fingerprint bundle — the seven variables of Table 5
//! that always move together (device, screen, browser, viewport, scroll,
//! orientation, resolution) plus cookie-creation date. This example wires
//! the same page twice (Chrome <58, Chrome 58+ with a blocker that lists
//! both companies), captures the real frames, and shows (a) the bundle in
//! the bytes, (b) that the blocker is irrelevant while the WRB is live.
//!
//! ```sh
//! cargo run --release --example fingerprint_tracking
//! ```

use sockscope::analysis::PiiLibrary;
use sockscope::browser::{AdBlockerExtension, Browser, BrowserConfig, BrowserEra, ExtensionHost};
use sockscope::filterlist::Engine;
use sockscope::inclusion::InclusionTree;
use sockscope::webmodel::{
    host::StaticHost, Action, Page, ReceivedItem, ScriptBehavior, ScriptRef, SentItem, WsExchange,
    WsServerProfile,
};

fn build_web() -> StaticHost {
    let mut host = StaticHost::new();
    let mut page = Page::new("http://news.example/story", "News");
    // The publisher serves the loader first-party (unlisted), which pulls
    // the platform tag, which opens the fingerprint socket.
    page.scripts = vec![ScriptRef::Remote(
        "http://news.example/assets/ads-loader.js".into(),
    )];
    host.add_page(page);
    host.add_script(
        "http://news.example/assets/ads-loader.js",
        ScriptBehavior::inert().then(Action::IncludeScript {
            url: "https://stats.g.doubleclick.net/tag.js".into(),
        }),
    );
    host.add_script(
        "https://stats.g.doubleclick.net/tag.js",
        ScriptBehavior::inert().then(Action::OpenWebSocket {
            url: "wss://apx.33across.com/fingerprint".into(),
            exchanges: vec![WsExchange {
                send: vec![
                    SentItem::Cookie,
                    SentItem::Device,
                    SentItem::Screen,
                    SentItem::Browser,
                    SentItem::Viewport,
                    SentItem::ScrollPosition,
                    SentItem::Orientation,
                    SentItem::FirstSeen,
                    SentItem::Resolution,
                    SentItem::Language,
                ],
                receive: vec![ReceivedItem::Json],
            }],
        }),
    );
    host.add_ws_server(
        "wss://apx.33across.com/fingerprint",
        WsServerProfile::accepting(),
    );
    host
}

fn main() {
    let web = build_web();
    let lib = PiiLibrary::new();

    // --- Chrome <58 with a fully-armed blocker: the WRB wins. ---
    let (engine, errs) =
        Engine::parse("||33across.com^$websocket\n||33across.com^\n||doubleclick.net/pixel");
    assert!(errs.is_empty());
    let browser = Browser::new(
        &web,
        ExtensionHost::stock(BrowserEra::PreChrome58)
            .install(AdBlockerExtension::new("abp", engine)),
        BrowserConfig::default(),
    );
    let visit = browser.visit("http://news.example/story").expect("visit");
    let tree = InclusionTree::build("http://news.example/story", &visit.events);
    let socket = tree
        .websockets()
        .next()
        .expect("fingerprint socket opened despite blocker");

    let chain: Vec<&str> = tree
        .chain(socket.id)
        .iter()
        .map(|n| n.host.as_str())
        .collect();
    println!("inclusion chain: {}", chain.join(" -> "));
    let ws = socket.ws.as_ref().unwrap();
    let payload = ws.sent[0].as_text().unwrap();
    println!("\nraw frame ({} bytes):\n{payload}\n", payload.len());

    let items = lib.classify_sent(payload.as_bytes());
    let fp: Vec<_> = items.iter().filter(|i| i.is_fingerprinting()).collect();
    println!("fingerprinting variables recovered by the analyzer: {fp:?}");
    assert_eq!(fp.len(), 7, "the full Table 5 bundle");

    // --- Chrome 58+: the same blocker now kills it. ---
    let (engine, _) = Engine::parse("||33across.com^$websocket");
    let patched = Browser::new(
        &web,
        ExtensionHost::stock(BrowserEra::PostChrome58)
            .install(AdBlockerExtension::new("abp", engine)),
        BrowserConfig::default(),
    );
    let visit = patched.visit("http://news.example/story").expect("visit");
    assert_eq!(visit.websocket_count(), 0);
    println!("\nChrome 58+ with the same rules: socket blocked. The pipeline");
    println!("only worked while the WRB was live — and §4.1 finds DoubleClick");
    println!("stopped initiating WebSockets right after the patch shipped.");
}
