//! DOM exfiltration by session-replay services (§4.3).
//!
//! A checkout page contains sensitive state — a search query and an unsent
//! support message. A Hotjar-style session-replay script serializes the
//! entire DOM and uploads it over a WebSocket. We run the page, capture the
//! real frames, and show that the analyzer's regex library flags the DOM
//! upload and that the sensitive strings are sitting in the payload.
//!
//! ```sh
//! cargo run --example session_replay_exfiltration
//! ```

use sockscope::analysis::PiiLibrary;
use sockscope::browser::{Browser, BrowserConfig, BrowserEra, ExtensionHost};
use sockscope::inclusion::InclusionTree;
use sockscope::webmodel::SentItem as Item;
use sockscope::webmodel::{
    host::StaticHost, Action, DomNode, Page, ScriptBehavior, ScriptRef, SentItem, WsExchange,
    WsServerProfile,
};

fn checkout_page() -> Page {
    let mut page = Page::new("http://shop.example/checkout", "Checkout");
    page.dom = Some(DomNode::el(
        "html",
        &[],
        vec![
            DomNode::el("head", &[], vec![]),
            DomNode::el(
                "body",
                &[],
                vec![
                    DomNode::el(
                        "input",
                        &[
                            ("name", "search"),
                            ("value", "prescription sleep medication"),
                        ],
                        vec![],
                    ),
                    DomNode::el(
                        "textarea",
                        &[("id", "support-draft")],
                        vec![DomNode::text("my card was charged twice, account 4421-99")],
                    ),
                    DomNode::el(
                        "script",
                        &[("src", "https://static.replayco.example/replay.js")],
                        vec![],
                    ),
                ],
            ),
        ],
    ));
    page.scripts = vec![ScriptRef::Remote(
        "https://static.replayco.example/replay.js".into(),
    )];
    page
}

fn main() {
    let mut web = StaticHost::new();
    web.add_page(checkout_page());
    web.add_script(
        "https://static.replayco.example/replay.js",
        ScriptBehavior::inert().then(Action::OpenWebSocket {
            url: "wss://ingest.replayco.example/session".into(),
            exchanges: vec![WsExchange::send_only(vec![
                Item::Cookie,
                Item::UserId,
                Item::Dom,
            ])],
        }),
    );
    web.add_ws_server(
        "wss://ingest.replayco.example/session",
        WsServerProfile::accepting(),
    );

    let browser = Browser::new(
        &web,
        ExtensionHost::stock(BrowserEra::PreChrome58),
        BrowserConfig::default(),
    );
    let visit = browser
        .visit("http://shop.example/checkout")
        .expect("visit");
    let tree = InclusionTree::build("http://shop.example/checkout", &visit.events);
    let socket = tree.websockets().next().expect("replay socket");
    let transcript = socket.ws.as_ref().expect("transcript");

    println!("session-replay socket: {}", socket.url);
    let payload = transcript.sent[0].as_text().expect("text frame");
    println!("uploaded payload size: {} bytes\n", payload.len());

    // The analyzer flags it…
    let lib = PiiLibrary::new();
    let items = lib.classify_sent(payload.as_bytes());
    println!("regex library classification: {items:?}");
    assert!(items.contains(&SentItem::Dom));
    assert!(items.contains(&SentItem::Cookie));

    // …and the sensitive content is literally in the frame.
    for secret in ["prescription sleep medication", "charged twice"] {
        assert!(
            payload.contains(secret),
            "payload should contain {secret:?}"
        );
        println!("payload contains the user's {secret:?}");
    }
    println!();
    println!("§4.3: \"the entire DOM was serialized and uploaded to Hotjar,");
    println!("LuckyOrange, or TruConversion … it may reveal search queries,");
    println!("unsent messages, etc.\" — and while the WRB was live, no blocker");
    println!("could interpose on this upload.");
}
