//! Allocation-attribution probe for the fused hot path.
//!
//! Runs one era of the crawl three times against progressively heavier
//! sinks — event-discarding, tree-building, and the full fused
//! classify+reduce shard — so the global allocation count can be
//! attributed to each layer by subtraction. Reads `SOCKSCOPE_SITES`;
//! prints per-site allocation counts plus the bump-arena counters.
//!
//! This is a diagnostic, not a benchmark: it exists so "where do the
//! allocations come from" has a one-command answer.

use sockscope_analysis::{FusedShard, Study};
use sockscope_browser::CdpEvent;
use sockscope_crawler::{CrawlConfig, QuarantineRecord, SiteFaults, SiteSink};
use sockscope_exec::memmeter::{CountingAlloc, Meter};
use sockscope_inclusion::TreeBuilder;
use sockscope_webgen::{CrawlEra, SyntheticWeb};

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Discards every event: measures webgen + browser alone.
struct NullSink;

impl sockscope_browser::VisitSink for NullSink {
    fn on_event(&mut self, _event: CdpEvent<'_>) {}
}

impl SiteSink for NullSink {
    fn site_begin(&mut self, _site_id: usize, _domain: &str, _rank: u32) {}
    fn page_begin(&mut self, _url: &str) {}
    fn page_end(&mut self) {}
    fn page_abort(&mut self) {}
    fn site_end(&mut self, _faults: Option<&SiteFaults>) {}
    fn site_abort(&mut self) {}
    fn site_quarantined(&mut self, _record: &QuarantineRecord) {}
}

/// Builds (and drops) the inclusion tree: browser + tree, no classify.
struct TreeSink {
    builder: Option<TreeBuilder>,
}

impl sockscope_browser::VisitSink for TreeSink {
    fn on_event(&mut self, event: CdpEvent<'_>) {
        if let Some(b) = self.builder.as_mut() {
            b.push(&event);
        }
    }
}

impl SiteSink for TreeSink {
    fn site_begin(&mut self, _site_id: usize, _domain: &str, _rank: u32) {}
    fn page_begin(&mut self, url: &str) {
        self.builder = Some(TreeBuilder::new(url));
    }
    fn page_end(&mut self) {
        let tree = self.builder.take().expect("page open").finish();
        std::hint::black_box(&tree);
    }
    fn page_abort(&mut self) {
        self.builder = None;
    }
    fn site_end(&mut self, _faults: Option<&SiteFaults>) {}
    fn site_abort(&mut self) {
        self.builder = None;
    }
    fn site_quarantined(&mut self, _record: &QuarantineRecord) {}
}

fn run<A: SiteSink + Send>(
    label: &str,
    era_web: &SyntheticWeb,
    crawl_config: &CrawlConfig,
    make_extensions: &(dyn Fn() -> sockscope_browser::ExtensionHost + Sync),
    make: &(dyn Fn(usize) -> A + Sync),
    n: f64,
) {
    let m = Meter::start();
    let sinks =
        sockscope_crawler::crawl_sharded_sink(era_web, crawl_config, 4, make_extensions, make);
    let stats = m.finish();
    drop(sinks);
    println!(
        "{label:<12} {:>12} allocs  {:>10.0} allocs/site  {:>8.2}s",
        stats.alloc_count,
        stats.alloc_count as f64 / n,
        stats.seconds
    );
}

fn main() {
    let mut config = sockscope_analysis::StudyConfig::default();
    if let Ok(v) = std::env::var("SOCKSCOPE_SITES") {
        config.n_sites = v.parse().expect("SOCKSCOPE_SITES");
    }
    let web = Study::universe(&config);
    let engine = Study::engine_for(&web);
    let crawl_config = Study::crawl_config(&config);
    let era = CrawlEra::ALL[0];
    let era_web = web.for_era(era);
    let make_extensions =
        || sockscope_browser::ExtensionHost::stock(sockscope_crawler::browser_era(&era.into()));
    let n = config.n_sites as f64;

    // Webgen synthesis alone: every page of every site, plus the script
    // behaviours its tags reference.
    {
        use sockscope_webmodel::{ScriptRef, WebHost};
        let m = Meter::start();
        let mut pages = 0usize;
        for site in era_web.sites() {
            let mut i = 0;
            loop {
                let url = if i == 0 {
                    format!("http://www.{}/", site.domain)
                } else {
                    format!("http://www.{}/page{i}.html", site.domain)
                };
                let Some(page) = era_web.get_page(&url) else {
                    break;
                };
                pages += 1;
                for s in &page.scripts {
                    if let ScriptRef::Remote(u) = s {
                        std::hint::black_box(era_web.get_script(u));
                    }
                }
                std::hint::black_box(&page);
                i += 1;
            }
        }
        let stats = m.finish();
        println!(
            "{:<12} {:>12} allocs  {:>10.0} allocs/site  {:>8.2}s  ({} pages)",
            "webgen",
            stats.alloc_count,
            stats.alloc_count as f64 / n,
            stats.seconds,
            pages
        );
    }

    run(
        "null",
        &era_web,
        &crawl_config,
        &make_extensions,
        &|_| NullSink,
        n,
    );
    run(
        "tree",
        &era_web,
        &crawl_config,
        &make_extensions,
        &|_| TreeSink { builder: None },
        n,
    );
    run(
        "fused",
        &era_web,
        &crawl_config,
        &make_extensions,
        &|_| FusedShard::new(era.label(), era.pre_patch(), &engine),
        n,
    );

    let a = sockscope_arena::stats();
    println!(
        "arena: high_water {} B, resets {}, spills {}, served {} B",
        a.high_water_bytes, a.resets, a.spills, a.served_bytes
    );
}
