//! Workspace umbrella crate: hosts the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The library itself lives
//! in the [`sockscope`] crate and its substrate crates.

pub use sockscope as core;
